"""Allocation value-type semantics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sim.types import Allocation

NAMES = ("a", "b", "c")


def alloc(*values: float) -> Allocation:
    return Allocation(dict(zip(NAMES, values)))


class TestConstruction:
    def test_mapping_access(self):
        a = alloc(1.0, 2.0, 3.0)
        assert a["a"] == 1.0
        assert a["c"] == 3.0
        assert len(a) == 3
        assert list(a) == list(NAMES)

    def test_missing_key(self):
        with pytest.raises(KeyError):
            alloc(1, 2, 3)["nope"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Allocation({})

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Allocation({"a": -0.5})

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            Allocation({"a": float("nan")})

    def test_from_array_roundtrip(self):
        a = Allocation.from_array(NAMES, np.array([0.5, 1.5, 2.5]))
        assert a.as_array().tolist() == [0.5, 1.5, 2.5]

    def test_from_array_length_mismatch(self):
        with pytest.raises(ValueError):
            Allocation.from_array(NAMES, np.array([1.0, 2.0]))


class TestIdentity:
    def test_equality_and_hash(self):
        assert alloc(1, 2, 3) == alloc(1, 2, 3)
        assert hash(alloc(1, 2, 3)) == hash(alloc(1, 2, 3))
        assert alloc(1, 2, 3) != alloc(1, 2, 4)

    def test_usable_in_sets(self):
        s = {alloc(1, 2, 3), alloc(1, 2, 3), alloc(9, 9, 9)}
        assert len(s) == 2

    def test_order_matters_for_names(self):
        a = Allocation({"a": 1.0, "b": 2.0})
        b = Allocation({"b": 2.0, "a": 1.0})
        assert a != b  # different service ordering is a different vector


class TestVectorOps:
    def test_total(self):
        assert alloc(1.0, 2.0, 3.5).total() == pytest.approx(6.5)

    def test_with_value(self):
        a = alloc(1, 2, 3).with_value("b", 9.0)
        assert a["b"] == 9.0
        assert a["a"] == 1.0

    def test_with_value_unknown(self):
        with pytest.raises(KeyError):
            alloc(1, 2, 3).with_value("zzz", 1.0)

    def test_reduce_fraction(self):
        a = alloc(1.0, 2.0, 3.0).reduce(["a", "c"], 0.5)
        assert a["a"] == pytest.approx(0.5)
        assert a["b"] == pytest.approx(2.0)
        assert a["c"] == pytest.approx(1.5)

    def test_reduce_floor(self):
        a = alloc(0.06, 1.0, 1.0).reduce(["a"], 0.9, floor=0.05)
        assert a["a"] == pytest.approx(0.05)

    def test_reduce_invalid_fraction(self):
        with pytest.raises(ValueError):
            alloc(1, 1, 1).reduce(["a"], 1.0)

    def test_reduce_unknown_service(self):
        with pytest.raises(KeyError):
            alloc(1, 1, 1).reduce(["zzz"], 0.1)

    def test_scale(self):
        a = alloc(1.0, 2.0, 3.0).scale(2.0)
        assert a.total() == pytest.approx(12.0)

    def test_scale_invalid(self):
        with pytest.raises(ValueError):
            alloc(1, 1, 1).scale(0.0)

    def test_clamp(self):
        a = alloc(0.01, 5.0, 1.0).clamp(lower=0.1, upper=2.0)
        assert a["a"] == pytest.approx(0.1)
        assert a["b"] == pytest.approx(2.0)
        assert a["c"] == pytest.approx(1.0)

    def test_as_array_with_order(self):
        a = alloc(1.0, 2.0, 3.0)
        assert a.as_array(["c", "a"]).tolist() == [3.0, 1.0]


class TestMonotoneOrder:
    def test_monotone_le(self):
        assert alloc(1, 2, 3).monotone_le(alloc(1, 2, 3))
        assert alloc(0.5, 2, 3).monotone_le(alloc(1, 2, 3))
        assert not alloc(1.5, 2, 3).monotone_le(alloc(1, 2, 3))

    def test_monotone_le_mismatched_services(self):
        with pytest.raises(ValueError):
            alloc(1, 2, 3).monotone_le(Allocation({"x": 1.0}))

    @given(
        values=st.lists(
            st.floats(min_value=0.05, max_value=10.0), min_size=3, max_size=3
        ),
        frac=st.floats(min_value=0.0, max_value=0.9),
    )
    def test_reduce_is_monotone(self, values, frac):
        a = alloc(*values)
        reduced = a.reduce(NAMES, frac)
        assert reduced.monotone_le(a)
        assert reduced.total() <= a.total() + 1e-12
