"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``apps``
    List the registered prototype applications.
``run``
    Run PEMA against a simulated deployment and print the trajectory.
``optimum``
    Find the OPTM allocation for an app/workload (paper §4.2 definition).
``compare``
    PEMA vs OPTM vs RULE at one operating point (a Fig. 15 cell).
``experiment``
    Run declarative :class:`~repro.experiments.ExperimentSpec` JSON files
    (a single file, a directory, or a glob) — the spec-driven entry point
    to every scenario.
``sweep``
    Expand a :class:`~repro.sweeps.SweepGrid` JSON file and run every
    cell through the resumable, content-addressed sweep scheduler.
``serve``
    Run the always-on control plane (:mod:`repro.service`): register
    apps from spec files, stream a load driver through their
    autoscalers, expose decisions and manager state over HTTP, and
    flush state on graceful shutdown.
``trace``
    Filter and pretty-print ``decision_trace`` records — the per-step
    causal record of every autoscaler decision — from an artifact or
    unit-payload JSON file, or straight from a sweep/state store.
``registry``
    List every registered experiment kind (engines, autoscalers,
    workload traces, hooks, load drivers, state-store backends) with
    its one-line description — the discoverability surface behind the
    spec files.

``run``, ``compare``, ``experiment`` and ``sweep`` all execute through
the shared experiment runner, so the same spec reproduces the same
numbers from any entry point.
"""

from __future__ import annotations

import argparse
import glob as _glob
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.apps import app_names, build_app
from repro.baselines import OptimumSearch
from repro.core import FastReactionLoop
from repro.experiments import (
    AutoscalerSpec,
    ExperimentSpec,
    WorkloadSpec,
    build_unit,
    run_comparison,
    run_experiment,
    run_unit,
)
from repro.sim import AnalyticalEngine

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PEMA (HPDC '22) reproduction: practical efficient "
        "microservice autoscaling with QoS assurance.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("apps", help="list the prototype applications")

    desc = sub.add_parser("describe", help="show one application's topology")
    desc.add_argument("--app", default="sockshop", choices=app_names())
    desc.add_argument("--plan", default=None,
                      help="also show one request class's execution plan")

    run = sub.add_parser("run", help="run PEMA on a simulated deployment")
    _common_args(run)
    run.add_argument("--iterations", type=int, default=70)
    run.add_argument("--alpha", type=float, default=0.5)
    run.add_argument("--beta", type=float, default=0.3)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--every", type=int, default=5,
                     help="print every Nth interval")
    run.add_argument("--fast", action="store_true",
                     help="enable sub-interval violation mitigation (§6)")

    opt = sub.add_parser("optimum", help="search the OPTM allocation")
    _common_args(opt)
    opt.add_argument("--restarts", type=int, default=2)
    opt.add_argument("--deep", action="store_true",
                     help="enable pairwise redistribution beyond the "
                     "paper's single-coordinate definition")

    cmp_ = sub.add_parser("compare", help="PEMA vs OPTM vs RULE")
    _common_args(cmp_)
    cmp_.add_argument("--iterations", type=int, default=60)
    cmp_.add_argument("--seed", type=int, default=0)
    cmp_.add_argument("--repeats", type=int, default=1,
                      help="PEMA seeds to average (Fig. 15 uses 3)")

    exp = sub.add_parser(
        "experiment", help="run declarative experiment specs (JSON files)"
    )
    exp.add_argument("--spec", required=True,
                     help="an ExperimentSpec JSON file, a directory of "
                     "them, or a glob pattern")
    exp.add_argument("--parallel", type=int, default=1,
                     help="worker processes for multi-seed specs")
    exp.add_argument("--out", default=None,
                     help="write the full artifact (spec + histories + "
                     "summary) to this JSON file (a directory when "
                     "--spec matches several files)")
    exp.add_argument("--compare", action="store_true",
                     help="also report the OPTM and RULE baselines "
                     "(a Fig. 15 cell)")

    swp = sub.add_parser(
        "sweep", help="run a sweep grid through the resumable scheduler"
    )
    swp.add_argument("--grid", required=True,
                     help="path to a SweepGrid JSON file")
    swp.add_argument("--parallel", type=int, default=1,
                     help="worker processes for the cell fan-out")
    swp.add_argument("--cache", default=None,
                     help="content-addressed result cache directory")
    swp.add_argument("--resume", action="store_true",
                     help="reuse completed cells already in --cache "
                     "(without it the sweep recomputes everything and "
                     "refreshes the cache)")
    swp.add_argument("--chunk-size", type=int, default=None,
                     help="units scheduled between persistence points "
                     "(default: 4x --parallel, 256x with --batch)")
    swp.add_argument("--batch", action=argparse.BooleanOptionalAction,
                     default=None,
                     help="evaluate compatible cells as vectorized NumPy "
                     "batches (byte-identical results; un-batchable cells "
                     "fall back to the scalar path and the fallback "
                     "reasons are reported; default: the "
                     "REPRO_SWEEP_BATCH environment variable)")
    swp.add_argument("--worker", action="store_true",
                     help="run as a distributed pull worker: claim task "
                     "chunks from the shared --cache directory (lease "
                     "files with heartbeat renewal), compute and persist "
                     "their units, and exit when the whole grid is done; "
                     "start N of these — processes or hosts sharing the "
                     "directory — to fan one sweep out")
    swp.add_argument("--coordinator", action="store_true",
                     help="wait until every unit of the grid is persisted "
                     "in --cache (computing nothing), then merge and "
                     "print the report — byte-identical to a serial run")
    swp.add_argument("--workers", type=int, default=0,
                     help="with --coordinator: also spawn this many local "
                     "worker processes before merging (a one-command "
                     "single-machine distributed run)")
    swp.add_argument("--worker-id", default=None,
                     help="this worker's id in lease files and reports "
                     "(default: <hostname>-<pid>)")
    swp.add_argument("--lease-ttl", type=float, default=None,
                     help="seconds before an unrenewed task lease counts "
                     "as stale and may be reclaimed by another worker "
                     "(default 30; must exceed the longest single unit "
                     "or batched group compute)")
    swp.add_argument("--wait-timeout", type=float, default=None,
                     help="with --coordinator: give up after this many "
                     "seconds with units still missing")
    swp.add_argument("--out", default=None,
                     help="write the aggregate summary (per-cell metrics) "
                     "to this JSON file")
    swp.add_argument("--report", default=None,
                     help="write the execution report (units, cache hits, "
                     "throughput) to this JSON file")
    swp.add_argument("--metrics-out", default=None,
                     help="write the process telemetry registry "
                     "(Prometheus text exposition) to this file after "
                     "the sweep")
    swp.add_argument("--profile", action="store_true",
                     help="print the per-phase wall-clock profile and "
                     "per-cell latency percentiles after the sweep")

    trc = sub.add_parser(
        "trace",
        help="filter and pretty-print captured decision traces",
    )
    src = trc.add_mutually_exclusive_group(required=True)
    src.add_argument("--in", dest="infile", default=None,
                     help="an artifact JSON, a unit-payload JSON, or a "
                     "tracer JSONL file holding the decision trace")
    src.add_argument("--store", default=None,
                     help="read the trace from this sweep/state store "
                     "directory instead of a file (needs --spec)")
    trc.add_argument("--spec", default=None,
                     help="with --store: the ExperimentSpec JSON file "
                     "whose unit entry holds the trace")
    trc.add_argument("--repeat", type=int, default=0,
                     help="repeat index to read (default 0)")
    trc.add_argument("--action", default=None,
                     help="only steps whose decision action matches "
                     "(e.g. reduce, explore, rollback, hold)")
    trc.add_argument("--violations", action="store_true",
                     help="only steps where the SLO was violated")
    trc.add_argument("--steps", default=None, metavar="A:B",
                     help="half-open step range to show (e.g. 10:20, "
                     "':50', '100:')")
    trc.add_argument("--jsonl", action="store_true",
                     help="emit matching records as JSON lines instead "
                     "of the table")

    srv = sub.add_parser(
        "serve", help="run the always-on autoscaling control plane"
    )
    srv.add_argument("--spec", required=True,
                     help="ExperimentSpec JSON file(s) to register as "
                     "apps: a file, a directory, or a glob")
    srv.add_argument("--steps", type=int, default=None,
                     help="ticks to stream per app (default: each "
                     "spec's full horizon)")
    srv.add_argument("--driver", default="replay",
                     help="load-driver kind (see: repro registry "
                     "--kind drivers)")
    srv.add_argument("--rps", type=float, default=None,
                     help="fixed offered load — shorthand for "
                     "--driver constant with this rate")
    srv.add_argument("--tick", type=float, default=0.0,
                     help="wall-clock seconds between interval rounds "
                     "(0 streams as fast as backpressure allows)")
    srv.add_argument("--queue-size", type=int, default=64,
                     help="per-app metric queue bound (the "
                     "backpressure boundary)")
    srv.add_argument("--store", default="memory",
                     help="state-store backend kind (see: repro "
                     "registry --kind state-stores)")
    srv.add_argument("--state-dir", default=None,
                     help="root for the directory backend (implies "
                     "--store directory; shares keys with the sweep "
                     "cache)")
    srv.add_argument("--snapshot-every", type=int, default=0,
                     help="persist a manager-state snapshot every N "
                     "ticks (0: only at shutdown)")
    srv.add_argument("--port", type=int, default=8422,
                     help="HTTP API port (0 picks an ephemeral port)")
    srv.add_argument("--no-http", action="store_true",
                     help="run without the HTTP API")
    srv.add_argument("--hold", action="store_true",
                     help="keep serving after the drive until "
                     "POST /shutdown or Ctrl-C")
    srv.add_argument("--out", default=None,
                     help="write the service run summary (status rows "
                     "+ flush report) to this JSON file")

    reg = sub.add_parser(
        "registry",
        help="list the registered experiment kinds and their descriptions",
    )
    reg.add_argument("--kind", default=None,
                     choices=["engines", "autoscalers", "workloads", "hooks",
                              "faults", "drivers", "state-stores"],
                     help="restrict the listing to one registry")
    reg.add_argument("--json", action="store_true",
                     help="emit the listing as JSON instead of a table")
    return parser


def _common_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--app", default="sockshop", choices=app_names())
    sub.add_argument("--workload", type=float, default=None,
                     help="requests per second (default: the app's "
                     "reference workload)")


def _cmd_apps() -> int:
    print(f"{'app':20s} {'services':>8s} {'SLO_ms':>7s} {'ref_rps':>8s}")
    for name in app_names():
        app = build_app(name)
        print(f"{name:20s} {app.n_services:8d} {app.slo * 1000:7.0f} "
              f"{app.reference_workload:8.0f}")
    return 0


def _run_spec(args: argparse.Namespace) -> ExperimentSpec:
    """The PEMA spec described by ``run``/``compare`` arguments."""
    app = build_app(args.app)
    workload = args.workload or app.reference_workload
    return ExperimentSpec(
        app=args.app,
        workload=WorkloadSpec.constant(workload),
        n_steps=args.iterations,
        autoscaler=AutoscalerSpec(
            "pema",
            {"alpha": getattr(args, "alpha", 0.5),
             "beta": getattr(args, "beta", 0.3)},
        ),
        seed=args.seed,
        repeats=getattr(args, "repeats", 1),
    )


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _run_spec(args)
    app = build_app(args.app)
    if args.fast:
        unit = build_unit(spec)
        loop = FastReactionLoop(unit.engine, unit.autoscaler, unit.trace,
                                interval=spec.interval)
        result = loop.run(spec.n_steps)
    else:
        unit = run_unit(spec)
        result = unit.result
    workload = spec.workload.params["rps"]
    print(f"# {args.app} @ {workload:.0f} rps, SLO {app.slo * 1000:.0f} ms, "
          f"alpha={args.alpha} beta={args.beta}"
          + (" (fast monitor)" if args.fast else ""))
    print("iter  total_cpu  p95_ms  violated")
    for record in result.records[:: max(args.every, 1)]:
        print(f"{record.step:4d}  {record.total_cpu:9.2f}  "
              f"{record.response * 1000:6.0f}  "
              f"{'x' if record.violated else ''}")
    print(f"\nsettled total CPU : {result.settled_total():.2f}")
    print(f"violations        : {result.violation_count()}"
          f"/{len(result)} intervals")
    if args.fast:
        print(f"violation exposure: {result.violation_exposure() * 100:.1f}% "
              f"of wall-clock time ({result.mitigations} fast mitigations)")
    return 0


def _cmd_optimum(args: argparse.Namespace) -> int:
    app = build_app(args.app)
    workload = args.workload or app.reference_workload
    engine = AnalyticalEngine(app)
    search = OptimumSearch(engine, restarts=args.restarts, deep=args.deep)
    result = search.find(workload)
    print(f"# OPTM for {args.app} @ {workload:.0f} rps "
          f"({result.evaluations} evaluations)")
    for name in app.service_names:
        print(f"  {name:20s} {result.allocation[name]:6.2f}")
    print(f"total CPU : {result.total_cpu:.2f}")
    print(f"latency   : {result.latency * 1000:.1f} ms "
          f"(SLO {app.slo * 1000:.0f} ms)")
    return 0


def _print_comparison(cell: dict[str, float], app_name: str) -> None:
    print(f"# {app_name} @ {cell['workload_rps']:.0f} rps")
    print(f"OPTM : {cell['optm_total']:7.2f} CPU")
    print(f"PEMA : {cell['pema_total']:7.2f} CPU  "
          f"({cell['pema_over_optm']:.2f}x optimum)")
    print(f"RULE : {cell['rule_total']:7.2f} CPU  "
          f"(PEMA saves {cell['pema_savings_vs_rule'] * 100:.0f}%)")


def _cmd_compare(args: argparse.Namespace) -> int:
    _print_comparison(run_comparison(_run_spec(args)), args.app)
    return 0


def _error(reason: object) -> int:
    print(f"error: {reason}", file=sys.stderr)
    return 2


def _spec_paths(pattern: str) -> list[Path]:
    """Expand ``--spec``: a file, a directory of specs, or a glob."""
    path = Path(pattern)
    if path.is_dir():
        return sorted(path.glob("*.json"))
    if any(ch in pattern for ch in "*?["):
        return [
            Path(match)
            for match in sorted(_glob.glob(pattern, recursive=True))
        ]
    return [path]


def _run_one_experiment(
    spec: ExperimentSpec, args: argparse.Namespace, out: Path | None
) -> int:
    try:
        artifact = run_experiment(spec, parallel=max(args.parallel, 1))
        summary = artifact.summary()
        print(f"# experiment {spec.name or '<unnamed>'}: {spec.app} x "
              f"{spec.workload.kind} x {spec.autoscaler.kind} "
              f"({spec.engine.kind} engine, {spec.repeats} seed(s))")
        print(json.dumps(summary, indent=2, sort_keys=True))
        if args.compare:
            _print_comparison(
                run_comparison(spec, pema_artifact=artifact), spec.app
            )
    except LookupError as exc:
        # E.g. a run with no SLO-satisfying interval has no settled total.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if out is not None:
        path = artifact.write(out)
        print(f"artifact written to {path}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    paths = _spec_paths(args.spec)
    if not paths:
        return _error(f"no spec files match {args.spec!r}")
    specs: list[ExperimentSpec] = []
    for path in paths:
        try:
            spec = ExperimentSpec.from_json(Path(path).read_text())
            spec.validate()
        except (OSError, TypeError, ValueError, KeyError) as exc:
            # KeyError's str() wraps its message in quotes; unwrap.
            reason = (
                exc.args[0] if isinstance(exc, KeyError) and exc.args else exc
            )
            return _error(f"{path}: {reason}")
        if args.compare and spec.autoscaler.kind != "pema":
            return _error(f"{path}: --compare needs a pema spec")
        specs.append(spec)
    # With several specs, --out names a directory of per-spec artifacts.
    out_dir: Path | None = None
    if args.out and (len(specs) > 1 or Path(args.out).is_dir()):
        out_dir = Path(args.out)
        try:
            out_dir.mkdir(parents=True, exist_ok=True)
        except (FileExistsError, NotADirectoryError):
            return _error(
                f"--out {args.out!r} must be a directory when --spec "
                f"matches several files"
            )
    status = 0
    used_names: dict[str, int] = {}
    for path, spec in zip(paths, specs):
        out: Path | None = None
        if args.out:
            if out_dir is not None:
                # Same-stem specs from different directories must not
                # clobber each other's artifacts.
                stem = Path(path).stem
                n = used_names[stem] = used_names.get(stem, 0) + 1
                name = stem if n == 1 else f"{stem}-{n}"
                out = out_dir / f"{name}.artifact.json"
            else:
                out = Path(args.out)
        status = max(status, _run_one_experiment(spec, args, out))
    return status


def _sweep_worker(args: argparse.Namespace, cells, store, batch: bool) -> int:
    """``repro sweep --worker``: one pull worker over the shared store."""
    from repro.sweeps.distributed import DEFAULT_LEASE_TTL, run_worker

    if args.out:
        return _error("--out needs the merged run: use --coordinator "
                      "(workers only compute and persist units)")
    lease_ttl = (
        args.lease_ttl if args.lease_ttl is not None else DEFAULT_LEASE_TTL
    )

    def on_task(stage, task) -> None:
        if stage != "unit":
            print(f"[{stage}] {task.task_id} ({len(task.units)} units)",
                  flush=True)

    report = run_worker(
        [cell.spec for cell in cells],
        store,
        worker_id=args.worker_id,
        lease_ttl=lease_ttl,
        chunk_size=args.chunk_size,
        batch=batch,
        on_task=on_task,
    )
    print(f"worker {report.worker}: {report.tasks_claimed} task(s) claimed "
          f"({report.tasks_stolen} stolen), {report.units_computed} "
          f"computed, {report.units_cached} cached, {report.heartbeats} "
          f"heartbeat(s) in {report.seconds:.2f}s")
    if report.fallbacks:
        reasons = ", ".join(
            f"{reason} x{count}"
            for reason, count in sorted(report.fallbacks.items())
        )
        print(f"batch fallbacks: {reasons}")
    if args.metrics_out:
        from repro.obs import default_registry

        Path(args.metrics_out).write_text(default_registry().render())
        print(f"metrics written to {args.metrics_out}")
    if args.report:
        Path(args.report).write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"report written to {args.report}")
    return 0


def _sweep_coordinate(args: argparse.Namespace, grid, cells, store,
                      batch: bool):
    """``repro sweep --coordinator``: spawn/await workers, then merge."""
    from repro.sweeps.distributed import (
        DEFAULT_LEASE_TTL,
        run_distributed,
        wait_for_grid,
    )

    lease_ttl = (
        args.lease_ttl if args.lease_ttl is not None else DEFAULT_LEASE_TTL
    )
    if args.workers:
        run, reports = run_distributed(
            grid,
            store,
            workers=args.workers,
            batch=batch,
            lease_ttl=lease_ttl,
            chunk_size=args.chunk_size,
            cells=cells,
        )
        for rep in reports:
            if "worker" not in rep:
                continue
            print(f"[worker {rep['worker']}] {rep['tasks_claimed']} task(s) "
                  f"claimed ({rep['tasks_stolen']} stolen), "
                  f"{rep['units_computed']} computed, "
                  f"{rep['units_cached']} cached in {rep['seconds']:.2f}s",
                  flush=True)
        return run

    last = [-1]

    def wait_progress(present: int, total: int) -> None:
        if present != last[0]:
            last[0] = present
            print(f"[coordinator] {present}/{total} units present",
                  flush=True)

    return wait_for_grid(
        grid,
        store,
        timeout=args.wait_timeout,
        cells=cells,
        on_progress=wait_progress,
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.sweeps import (
        SweepGrid,
        SweepStore,
        cells_table,
        grid_summary_json,
        run_grid,
    )
    from repro.sweeps.batched import batch_from_env as env_batch_default

    try:
        grid = SweepGrid.read(args.grid)
        cells = grid.cells()  # expand once: validation, counting, the run
        for cell in cells:
            cell.spec.validate()
    except (OSError, TypeError, ValueError, KeyError) as exc:
        reason = exc.args[0] if isinstance(exc, KeyError) and exc.args else exc
        return _error(reason)
    if args.resume and not args.cache:
        return _error("--resume needs --cache")
    if args.parallel < 1:
        return _error("--parallel must be >= 1")
    if args.chunk_size is not None and args.chunk_size < 1:
        return _error("--chunk-size must be >= 1")
    if args.worker and args.coordinator:
        return _error("--worker and --coordinator are mutually exclusive")
    if (args.worker or args.coordinator) and not args.cache:
        return _error("--worker/--coordinator need --cache (the shared "
                      "store is the work queue)")
    if args.workers and not args.coordinator:
        return _error("--workers needs --coordinator")
    if args.workers < 0:
        return _error("--workers must be >= 0")
    if args.lease_ttl is not None and args.lease_ttl <= 0:
        return _error("--lease-ttl must be > 0")
    store = SweepStore(args.cache) if args.cache else None
    batch = args.batch if args.batch is not None else env_batch_default()
    units = sum(cell.spec.repeats for cell in cells)
    print(f"# sweep {grid.name}: {len(cells)} cells, {units} units"
          + (", batched" if batch else "")
          + (f", cache {store.root}" if store is not None else ""))

    if args.worker:
        return _sweep_worker(args, cells, store, batch)

    from repro.experiments import optimum_cache_info

    optimum_start = optimum_cache_info()

    def optimum_delta() -> dict:
        now = optimum_cache_info()
        return {k: now[k] - optimum_start[k]
                for k in ("hits", "misses", "store_hits", "solved")}

    def progress(p) -> None:
        optm = optimum_delta()
        optm_note = (
            f", optm {optm['solved']} solved/"
            f"{optm['hits'] + optm['store_hits']} cached"
            if any(optm.values()) else ""
        )
        fallback_note = (
            ", fallbacks " + " ".join(
                f"{reason}:{count}"
                for reason, count in sorted(p.fallbacks.items())
            )
            if p.fallbacks else ""
        )
        print(f"[chunk {p.chunk}/{p.n_chunks}] {p.completed}/{p.total} "
              f"units done ({p.cached} cached, {p.computed} computed, "
              f"{p.cells_completed}/{p.cells_total} cells{optm_note}"
              f"{fallback_note})",
              flush=True)

    try:
        if args.coordinator:
            run = _sweep_coordinate(args, grid, cells, store, batch)
        else:
            run = run_grid(
                grid,
                store=store,
                reuse=args.resume,
                parallel=args.parallel,
                chunk_size=args.chunk_size,
                batch=batch,
                on_progress=progress,
                cells=cells,
            )
        print()
        print(cells_table(run))
        summary_json = grid_summary_json(run)
    except TimeoutError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except LookupError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    report = run.report
    split = (
        f" ({report.batched_units} batched, {report.scalar_units} scalar)"
        if batch else ""
    )
    print(f"\n{report.units} units: {report.cache_hits} cached, "
          f"{report.computed} computed{split} in {report.chunks} chunk(s), "
          f"{report.seconds:.2f}s ({report.units_per_sec:.2f} units/s)")
    if report.fallbacks:
        reasons = ", ".join(
            f"{reason} x{count}"
            for reason, count in report.fallbacks.items()
        )
        print(f"batch fallbacks: {reasons}")
    if report.replay_units or report.manager_states:
        print(f"replay: {report.replay_units} trace-replay unit(s), "
              f"{report.manager_states} manager-state payload(s) captured")
    if any(report.optimum.values()):
        optm = report.optimum
        print(f"optimum searches: {optm['solved']} solved, "
              f"{optm['hits']} cache hits, {optm['store_hits']} "
              f"store-backed, {optm['misses']} misses")
    if args.profile and report.profile:
        phases = report.profile.get("phases", {})
        cell = report.profile.get("cell_seconds", {})
        phase_note = " ".join(
            f"{name}={phases[name]:.3f}s"
            for name in ("plan", "load", "run", "persist", "aggregate")
            if name in phases
        )
        print(f"profile: {phase_note}")
        print(f"worker time: {report.profile.get('batched_seconds', 0.0):.3f}s"
              f" batched, {report.profile.get('scalar_seconds', 0.0):.3f}s "
              f"scalar")
        if cell.get("count"):
            print(f"per-cell latency: p50 {cell['p50'] * 1000:.1f} ms, "
                  f"p95 {cell['p95'] * 1000:.1f} ms "
                  f"({cell['count']} computed cells)")
    if args.metrics_out:
        from repro.obs import default_registry

        Path(args.metrics_out).write_text(default_registry().render())
        print(f"metrics written to {args.metrics_out}")
    if args.out:
        Path(args.out).write_text(summary_json + "\n")
        print(f"aggregate written to {args.out}")
    if args.report:
        payload = report.to_dict()
        if store is not None:
            payload["store"] = store.stats.to_dict()
        Path(args.report).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"report written to {args.report}")
    return 0


def _load_service_specs(
    pattern: str,
) -> list[tuple[str, ExperimentSpec]] | int:
    """``serve --spec`` expansion: validated (app_id, spec) pairs.

    App ids come from the spec's name (or the file stem for unnamed
    specs); same-id collisions get ``-2``/``-3`` suffixes so every
    matched file registers.
    """
    paths = _spec_paths(pattern)
    if not paths:
        return _error(f"no spec files match {pattern!r}")
    apps: list[tuple[str, ExperimentSpec]] = []
    used: dict[str, int] = {}
    for path in paths:
        try:
            spec = ExperimentSpec.from_json(Path(path).read_text())
            spec.validate()
        except (OSError, TypeError, ValueError, KeyError) as exc:
            reason = (
                exc.args[0] if isinstance(exc, KeyError) and exc.args else exc
            )
            return _error(f"{path}: {reason}")
        base = spec.name or Path(path).stem
        n = used[base] = used.get(base, 0) + 1
        apps.append((base if n == 1 else f"{base}-{n}", spec))
    return apps


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import (
        LOAD_DRIVERS,
        STATE_STORES,
        ServiceError,
        ServiceRuntime,
        ServiceStateStore,
    )

    apps = _load_service_specs(args.spec)
    if isinstance(apps, int):
        return apps
    if args.queue_size < 1:
        return _error("--queue-size must be >= 1")
    if args.snapshot_every < 0:
        return _error("--snapshot-every must be >= 0")
    try:
        if args.rps is not None:
            driver = LOAD_DRIVERS.build("constant", rps=args.rps)
        else:
            driver = LOAD_DRIVERS.build(args.driver)
        store_kind = "directory" if args.state_dir else args.store
        if store_kind == "directory":
            if not args.state_dir:
                return _error("--store directory needs --state-dir")
            backend = STATE_STORES.build("directory", root=args.state_dir)
        else:
            backend = STATE_STORES.build(store_kind)
    except (KeyError, TypeError, ValueError) as exc:
        reason = exc.args[0] if isinstance(exc, KeyError) and exc.args else exc
        return _error(reason)

    runtime = ServiceRuntime(
        store=ServiceStateStore(backend, snapshot_every=args.snapshot_every),
        queue_size=args.queue_size,
        http=not args.no_http,
        port=args.port,
    )
    try:
        runtime.start()
    except OSError as exc:  # e.g. port already bound
        return _error(exc)
    try:
        for app_id, spec in apps:
            runtime.register(spec, app_id=app_id)
        print(f"# repro.service: {len(apps)} app(s)"
              + (f", listening on {runtime.url}" if runtime.url else ""))
        try:
            submitted = runtime.drive(
                args.steps, driver=driver, tick=args.tick
            )
            print(f"streamed {submitted} tick(s)")
            if args.hold:
                print("holding: POST /shutdown (or Ctrl-C) to stop")
                runtime.wait_shutdown_requested()
        except KeyboardInterrupt:
            print("\ninterrupted: draining and flushing state")
    except ServiceError as exc:
        runtime.shutdown()
        return _error(exc)
    status = runtime.status()
    flush = runtime.shutdown()
    print(f"\n{'app':24s} {'status':>8s} {'steps':>6s} {'done':>5s} "
          f"{'viol':>5s} {'unit':>5s} {'rst':>3s} {'p50ms':>7s} "
          f"{'p95ms':>7s} {'qpeak':>5s}  error")
    for row in status["apps"]:
        entry = flush.get(row["app"], {})
        p50 = row.get("tick_p50_ms")
        p95 = row.get("tick_p95_ms")
        print(f"{row['app']:24s} {row.get('status', 'ok'):>8s} "
              f"{row['steps_done']:6d} "
              f"{'yes' if row['complete'] else 'no':>5s} "
              f"{row['violations']:5d} "
              f"{'yes' if entry.get('unit_entry') else 'no':>5s} "
              f"{row.get('restarts', 0):3d} "
              f"{'-' if p50 is None else format(p50, '.2f'):>7s} "
              f"{'-' if p95 is None else format(p95, '.2f'):>7s} "
              f"{row.get('queue_peak', 0):5d}  "
              f"{row['error'] or ''}")
    if args.out:
        Path(args.out).write_text(json.dumps(
            {"status": status, "flush": flush}, indent=2, sort_keys=True,
        ) + "\n")
        print(f"summary written to {args.out}")
    return 1 if any(row["error"] for row in status["apps"]) else 0


def _parse_step_range(raw: str | None) -> tuple[int | None, int | None]:
    """``--steps A:B`` as a half-open range; either side may be empty."""
    if raw is None:
        return None, None
    lo_s, sep, hi_s = raw.partition(":")
    if not sep:
        raise ValueError(f"--steps must look like A:B, got {raw!r}")
    try:
        lo = int(lo_s) if lo_s else None
        hi = int(hi_s) if hi_s else None
    except ValueError:
        raise ValueError(f"--steps bounds must be integers: {raw!r}") from None
    return lo, hi


def _load_trace_records(args: argparse.Namespace) -> list[dict]:
    """Resolve the ``trace`` command's source into decision records.

    Accepts, in order of detection: an ExperimentArtifact JSON (the
    ``decision_traces`` channel, picked by ``--repeat``), a raw unit
    payload (``decision_trace``), a bare JSON list of records, or a
    tracer JSONL file (one record per line; ``decision`` events are
    unwrapped, other span/event records pass through).
    """
    if args.store is not None:
        if not args.spec:
            raise ValueError("--store needs --spec to name the unit")
        from repro.sweeps import SweepStore

        spec = ExperimentSpec.from_json(Path(args.spec).read_text())
        payload = SweepStore(args.store).get_result(spec, args.repeat)
        if payload is None:
            raise LookupError(
                f"no unit entry for {args.spec} repeat {args.repeat} "
                f"in {args.store}"
            )
        trace = payload.get("decision_trace")
        if trace is None:
            raise LookupError(
                "unit entry has no decision_trace — was the spec run "
                'with "capture": ["decision_trace"]?'
            )
        return list(trace)

    path = Path(args.infile)
    text = path.read_text()
    try:
        data = json.loads(text)
    except json.JSONDecodeError:
        from repro.obs.trace import read_jsonl

        records = read_jsonl(path)
        return [
            rec["data"]
            if rec.get("type") == "event" and rec.get("name") == "decision"
            else rec
            for rec in records
        ]
    if isinstance(data, list):
        return list(data)
    if isinstance(data, dict):
        if "decision_traces" in data:
            traces = data["decision_traces"]
            if not 0 <= args.repeat < len(traces):
                raise LookupError(
                    f"artifact holds {len(traces)} trace(s), "
                    f"--repeat {args.repeat} is out of range"
                )
            trace = traces[args.repeat]
            if trace is None:
                raise LookupError(f"repeat {args.repeat} captured no trace")
            return list(trace)
        if "decision_trace" in data:
            return list(data["decision_trace"])
    raise LookupError(
        f"{path}: no decision trace found (expected an artifact with "
        f"decision_traces, a unit payload with decision_trace, a JSON "
        f"list of records, or tracer JSONL)"
    )


def _trace_action(record: dict) -> str:
    """The decision's action slug ('' when the unit captured none)."""
    decision = record.get("decision")
    if not isinstance(decision, dict):
        return ""
    inner = decision.get("pema")
    if isinstance(inner, dict) and "action" in inner:
        return str(inner["action"])
    return str(decision.get("action", ""))


def _cmd_trace(args: argparse.Namespace) -> int:
    try:
        lo, hi = _parse_step_range(args.steps)
        records = _load_trace_records(args)
    except (OSError, ValueError, LookupError, KeyError, TypeError) as exc:
        reason = exc.args[0] if isinstance(exc, KeyError) and exc.args else exc
        return _error(reason)
    selected = []
    for record in records:
        step = record.get("step")
        if lo is not None and (step is None or step < lo):
            continue
        if hi is not None and (step is None or step >= hi):
            continue
        if args.violations and not record.get("violated"):
            continue
        if args.action and _trace_action(record) != args.action:
            continue
        selected.append(record)
    if args.jsonl:
        for record in selected:
            print(json.dumps(record, sort_keys=True))
        return 0
    print(f"# {len(selected)}/{len(records)} decision record(s)")
    print(f"{'step':>5s} {'rps':>8s} {'p95_ms':>7s} {'slo_ms':>7s} "
          f"{'viol':>4s} {'cpu':>8s} {'next':>8s}  action")
    for record in selected:
        if "workload" not in record:
            # A non-decision tracer record (span/other event): show raw.
            print(json.dumps(record, sort_keys=True))
            continue
        action = _trace_action(record)
        decision = record.get("decision") or {}
        inner = decision.get("pema") if isinstance(decision, dict) else None
        detail = inner if isinstance(inner, dict) else decision
        notes = []
        if isinstance(detail, dict):
            if detail.get("targets"):
                notes.append("targets=" + ",".join(detail["targets"]))
            if detail.get("delta"):
                notes.append(f"delta={detail['delta']:.3f}")
        if isinstance(decision, dict) and decision.get("phase"):
            notes.append(f"phase={decision['phase']}")
        print(f"{record['step']:5d} {record['workload']:8.1f} "
              f"{record['response'] * 1000:7.1f} {record['slo'] * 1000:7.1f} "
              f"{'x' if record['violated'] else '':>4s} "
              f"{record['total_cpu']:8.2f} {record['next_total_cpu']:8.2f}  "
              f"{action or '-'}"
              + (f" ({' '.join(notes)})" if notes else ""))
    return 0


def _cmd_registry(args: argparse.Namespace) -> int:
    from repro.experiments import AUTOSCALERS, ENGINES, HOOKS, WORKLOADS
    from repro.faults import FAULTS
    from repro.service import LOAD_DRIVERS, STATE_STORES

    registries = {
        "engines": ENGINES,
        "autoscalers": AUTOSCALERS,
        "workloads": WORKLOADS,
        "hooks": HOOKS,
        "faults": FAULTS,
        "drivers": LOAD_DRIVERS,
        "state-stores": STATE_STORES,
    }
    if args.kind is not None:
        registries = {args.kind: registries[args.kind]}
    if args.json:
        print(json.dumps(
            {
                group: dict(registry.entries())
                for group, registry in registries.items()
            },
            indent=2, sort_keys=True,
        ))
        return 0
    for i, (group, registry) in enumerate(registries.items()):
        if i:
            print()
        print(f"{group} ({registry.label}):")
        for name, description in registry.entries():
            print(f"  {name:22s} {description}")
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    from repro.apps.describe import describe_app, describe_plan

    app = build_app(args.app)
    print(describe_app(app))
    if args.plan is not None:
        print()
        print(describe_plan(app, args.plan))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "apps":
        return _cmd_apps()
    if args.command == "describe":
        return _cmd_describe(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "optimum":
        return _cmd_optimum(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "registry":
        return _cmd_registry(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
