"""The retained scalar DES reference: the vectorized mode's fidelity oracle.

:class:`ReferenceSimulator` executes the exact event logic of
:class:`~repro.sim.des.simulator.MicroserviceSimulator` but in the
transparently-correct scalar style: one ``numpy.random.Generator`` call
per variate at the moment the event needs it, lazy arrival draws through
the :class:`~repro.sim.des.arrivals.PoissonArrivals`/
:class:`~repro.sim.des.arrivals.MMPPArrivals` chain objects, and a
dataclass-event heap (:class:`~repro.sim.des.events.EventQueue`).

Under the :mod:`repro.sim.des.variates` stream contract the two modes
are bit-identical — traces, ``IntervalMetrics``, counters, and the sweep
payloads built from them.  ``benchmarks/des_gate.py`` and the property
tests in ``tests/test_des_vectorized.py`` enforce this; when they
disagree, the reference is by definition the correct one (the
``find_reference`` pattern the OPTM frontier rewrite established).
"""

from __future__ import annotations

from repro.sim.des.arrivals import MMPPArrivals, PoissonArrivals
from repro.sim.des.events import EventKind, EventQueue
from repro.sim.des.simulator import _SimCore
from repro.sim.des.variates import (
    ScalarExp,
    ScalarGamma,
    ScalarNormal,
    ScalarUniform,
)

__all__ = ["ReferenceSimulator"]


class ReferenceSimulator(_SimCore):
    """Scalar-call-order DES run; same constructor and surface as
    :class:`~repro.sim.des.simulator.MicroserviceSimulator`."""

    def _make_queue(self) -> EventQueue:
        return EventQueue()

    def _init_streams(self, core, background) -> None:
        cfg = self.config
        if cfg.arrivals == "poisson":
            self.arrivals = PoissonArrivals(self.workload_rps, core[0])
        else:
            self.arrivals = MMPPArrivals(
                self.workload_rps,
                core[0],
                burst_factor=cfg.burst_factor,
                burst_fraction=cfg.burst_fraction,
            )
        self._next_plan_u = ScalarUniform(core[1]).next
        self._next_entry_u = ScalarUniform(core[2]).next
        self._next_gamma = (
            ScalarGamma(core[3], self._demand_shape).next
            if self._demand_shape > 0
            else None
        )
        self._next_normal = ScalarNormal(core[4]).next
        self._bg_exp = {
            name: ScalarExp(background[i])
            for i, name in enumerate(self.app.service_names)
        }

    def _first_arrival_time(self) -> float:
        return self.arrivals.next_gap()

    def _next_arrival_time(self, now: float) -> float | None:
        return now + self.arrivals.next_gap()

    def _background_first_time(self, service: str) -> float:
        return self._bg_exp[service].next() * self.config.background_interval

    def _background_work(self, service: str) -> float:
        return self._bg_exp[service].next() * self._bg_work_scale[service]

    def _background_next_time(self, service: str, now: float) -> float | None:
        return now + self._bg_exp[service].next() * self.config.background_interval

    def _drain(self, horizon: float, warmup: float) -> bool:
        queue = self.queue
        warmup_done = warmup == 0.0
        while len(queue) and queue.peek_time() <= horizon:
            event = queue.pop()
            if not warmup_done and event.time >= warmup:
                self._reset_measurement(warmup)
                warmup_done = True
            kind = event.kind
            if kind is EventKind.ARRIVAL:
                self._on_arrival(event.payload)
            elif kind is EventKind.STAGE_START:
                self._start_stage(event.payload)
            elif kind is EventKind.CPU_DONE:
                service, job_id = event.payload
                self._on_cpu_done(service, job_id, event.epoch)
            elif kind is EventKind.WAIT_DONE:
                self._finish_visit(event.payload)
            elif kind is EventKind.QUOTA_EXHAUST:
                self._on_quota_exhaust(event.payload, event.epoch)
            elif kind is EventKind.PERIOD_END:
                self._on_period_end(event.payload)
            elif kind is EventKind.BACKGROUND:
                service, bg_horizon = event.payload
                self._on_background(service, bg_horizon)
        return warmup_done
