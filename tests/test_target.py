"""Dynamic response-time target: Eqn. (9) and slope learning."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.target import DynamicTarget, learn_slope


class TestDynamicTarget:
    def test_at_lambda_max_equals_slo(self):
        t = DynamicTarget(slo=0.25, slope=0.0005)
        assert t.target(300.0, lambda_max=300.0) == pytest.approx(0.25)

    def test_below_lambda_max_is_conservative(self):
        t = DynamicTarget(slo=0.25, slope=0.0005)
        # Eqn (9): R(200) = m (200 - 300) + R_SLO
        assert t.target(200.0, lambda_max=300.0) == pytest.approx(
            0.25 - 0.0005 * 100
        )

    def test_floor_clamp(self):
        t = DynamicTarget(slo=0.25, slope=0.01, floor_fraction=0.3)
        assert t.target(0.0, lambda_max=1000.0) == pytest.approx(0.075)

    def test_workload_above_max_clamps(self):
        t = DynamicTarget(slo=0.25, slope=0.0005)
        assert t.target(500.0, lambda_max=300.0) == pytest.approx(0.25)

    def test_zero_slope_is_plain_slo(self):
        t = DynamicTarget(slo=0.25, slope=0.0)
        assert t.target(10.0, lambda_max=300.0) == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            DynamicTarget(slo=0.0, slope=0.001)
        with pytest.raises(ValueError):
            DynamicTarget(slo=0.25, slope=-0.1)
        with pytest.raises(ValueError):
            DynamicTarget(slo=0.25, slope=0.1, floor_fraction=0.0)
        t = DynamicTarget(slo=0.25, slope=0.001)
        with pytest.raises(ValueError):
            t.target(-1.0, lambda_max=100.0)

    @given(
        wl=st.floats(min_value=0.0, max_value=1000.0),
        slope=st.floats(min_value=0.0, max_value=0.01),
    )
    @settings(max_examples=60, deadline=None)
    def test_never_above_slo(self, wl, slope):
        t = DynamicTarget(slo=0.25, slope=slope)
        assert t.target(wl, lambda_max=1000.0) <= 0.25 + 1e-12


class TestLearnSlope:
    def test_recovers_linear_relation(self):
        workloads = np.linspace(100, 400, 20)
        responses = 0.05 + 0.0004 * workloads
        assert learn_slope(workloads, responses) == pytest.approx(0.0004, rel=1e-6)

    def test_noisy_recovery(self):
        rng = np.random.default_rng(0)
        workloads = np.linspace(100, 400, 50)
        responses = 0.05 + 0.0004 * workloads + rng.normal(0, 0.002, 50)
        assert learn_slope(workloads, responses) == pytest.approx(0.0004, rel=0.15)

    def test_negative_slope_clamped(self):
        assert learn_slope([100, 200, 300], [0.3, 0.2, 0.1]) == 0.0

    def test_degenerate_inputs(self):
        assert learn_slope([100.0], [0.2]) == 0.0
        assert learn_slope([100.0, 100.0], [0.2, 0.3]) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            learn_slope([1.0, 2.0], [1.0])
