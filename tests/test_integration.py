"""Cross-module integration: the paper's headline behaviours end to end."""

import numpy as np
import pytest

from repro import (
    AnalyticalEngine,
    ControlLoop,
    PEMAConfig,
    PEMAController,
    WorkloadAwarePEMA,
    build_app,
)
from repro.baselines import OptimumSearch, RuleBasedAutoscaler
from repro.sim.des import DESEngine
from repro.workload import BurstWorkload, ConstantWorkload, NoisyTrace


class TestPEMAConvergence:
    """Fig. 11/12 behaviour: PEMA lands near the optimum, QoS held."""

    def test_sockshop_converges_near_optimum(self):
        app = build_app("sockshop")
        wl = 700.0
        engine = AnalyticalEngine(app, seed=2)
        pema = PEMAController(
            app.service_names, app.slo, app.generous_allocation(wl),
            PEMAConfig.low_exploration(), seed=3,
        )
        result = ControlLoop(engine, pema, ConstantWorkload(wl)).run(70)
        optimum = OptimumSearch(AnalyticalEngine(app), restarts=2).find(wl)
        settled = result.settled_total()
        assert settled < app.generous_allocation(wl).total() * 0.7
        assert settled / optimum.total_cpu < 1.35
        # QoS: the vast majority of intervals satisfy the SLO.
        assert result.violation_rate() < 0.25

    def test_total_cpu_decreases_overall(self):
        app = build_app("hotelreservation")
        wl = 500.0
        engine = AnalyticalEngine(app, seed=4)
        pema = PEMAController(
            app.service_names, app.slo, app.generous_allocation(wl), seed=5
        )
        result = ControlLoop(engine, pema, ConstantWorkload(wl)).run(40)
        assert result.total_cpu[-1] < result.total_cpu[0] * 0.75

    def test_pema_beats_rule(self):
        """Fig. 15 ordering: OPTM <= PEMA < RULE."""
        app = build_app("sockshop")
        wl = 700.0
        pema = PEMAController(
            app.service_names, app.slo, app.generous_allocation(wl), seed=1
        )
        pema_total = (
            ControlLoop(AnalyticalEngine(app, seed=1), pema, ConstantWorkload(wl))
            .run(60)
            .settled_total()
        )
        rule = RuleBasedAutoscaler(app.generous_allocation(wl))
        rule_total = (
            ControlLoop(
                AnalyticalEngine(app, seed=2), rule, ConstantWorkload(wl),
                slo=app.slo,
            )
            .run(25)
            .settled_total()
        )
        optimum = OptimumSearch(AnalyticalEngine(app), restarts=2).find(wl)
        assert optimum.total_cpu <= pema_total * 1.05
        assert pema_total < rule_total

    def test_rule_satisfies_slo(self):
        app = build_app("sockshop")
        wl = 700.0
        rule = RuleBasedAutoscaler(app.generous_allocation(wl))
        result = ControlLoop(
            AnalyticalEngine(app, seed=3), rule, ConstantWorkload(wl), slo=app.slo
        ).run(25)
        assert result.violation_rate() < 0.10


class TestWorkloadAware:
    def test_range_splitting_run(self):
        """Fig. 13 behaviour: ranges split; allocations stay SLO-safe."""
        app = build_app("trainticket")
        manager = WorkloadAwarePEMA(
            app.service_names,
            app.slo,
            app.generous_allocation(300.0),
            workload_low=200.0,
            workload_high=300.0,
            min_range_width=25.0,
            split_after=8,
            slope_samples=5,
            seed=0,
        )
        trace = NoisyTrace(ConstantWorkload(250.0), sigma=0.12, seed=9)
        engine = AnalyticalEngine(app, seed=8)
        result = ControlLoop(engine, manager, trace, slo=app.slo).run(70)
        assert len(manager.tree.splits) >= 1
        assert result.violation_rate() < 0.30
        assert manager.slope is not None and manager.slope >= 0.0

    def test_burst_switching(self):
        """Fig. 18 behaviour: bursts handled by switching ranges."""
        app = build_app("sockshop")
        manager = WorkloadAwarePEMA(
            app.service_names,
            app.slo,
            app.generous_allocation(800.0),
            workload_low=300.0,
            workload_high=800.0,
            min_range_width=125.0,
            split_after=5,
            slope_samples=4,
            seed=1,
        )
        trace = BurstWorkload(
            400.0, [(120.0 * 30, 120.0 * 5, 750.0), (120.0 * 45, 120.0 * 5, 650.0)]
        )
        engine = AnalyticalEngine(app, seed=2)
        result = ControlLoop(engine, manager, trace, slo=app.slo).run(55)
        switches = [s for s in manager.history if s.phase == "switch"]
        assert len(switches) >= 2  # entered and left the burst ranges
        assert result.violation_rate() < 0.35


class TestAdaptability:
    def test_cpu_speed_change_recovers(self):
        """Fig. 19: a clock-speed drop forces re-convergence upward."""
        app = build_app("sockshop")
        wl = 700.0
        engine = AnalyticalEngine(app, seed=6)
        pema = PEMAController(
            app.service_names, app.slo, app.generous_allocation(wl), seed=7
        )
        loop = ControlLoop(engine, pema, ConstantWorkload(wl))

        def change_speed(step, lp):
            if step == 25:
                lp.environment.set_cpu_speed(0.8)

        result = loop.run(50, on_step=change_speed)
        before = result.total_cpu[20:25].mean()
        after = result.total_cpu[-5:].mean()
        assert after > before  # slower clock needs more CPU
        # Recovers: the tail of the run mostly satisfies the SLO.
        tail_violations = sum(r.violated for r in result.records[-10:])
        assert tail_violations <= 3

    def test_dynamic_slo_change(self):
        """Fig. 20: tightening the SLO grows CPU, loosening shrinks it."""
        app = build_app("sockshop")
        wl = 700.0
        engine = AnalyticalEngine(app, seed=9)
        pema = PEMAController(
            app.service_names, app.slo, app.generous_allocation(wl), seed=10
        )
        loop = ControlLoop(engine, pema, ConstantWorkload(wl))

        def change_slo(step, lp):
            if step == 20:
                lp.autoscaler.set_slo(0.200)
            elif step == 35:
                lp.autoscaler.set_slo(0.300)

        result = loop.run(50, on_step=change_slo)
        at_250 = result.total_cpu[15:20].mean()
        at_200 = result.total_cpu[30:35].mean()
        at_300 = result.total_cpu[-3:].mean()
        assert at_200 > at_250 * 0.95  # tighter SLO cannot need less CPU
        assert at_300 < at_200


class TestDESIntegration:
    def test_pema_runs_against_des(self, tiny_app):
        """The controller works unchanged against the request-level engine."""
        engine = DESEngine(tiny_app, sim_seconds=3.0, warmup_seconds=1.0, seed=3)
        pema = PEMAController(
            tiny_app.service_names,
            tiny_app.slo,
            tiny_app.generous_allocation(120.0),
            PEMAConfig(explore_a=0.0, explore_b=0.0),
            seed=4,
        )
        result = ControlLoop(engine, pema, ConstantWorkload(120.0)).run(12)
        assert result.total_cpu[-1] <= result.total_cpu[0]
        assert result.violation_rate() <= 0.5

    def test_des_and_analytical_agree_on_ordering(self, tiny_app):
        """Both engines rank a squeezed allocation worse than a generous one.

        The squeeze must be deep enough to actually induce CFS throttling
        in the DES (0.12x does; milder scales leave every quota slack and
        the latency gap is seed noise).
        """
        generous = tiny_app.generous_allocation(150.0)
        squeezed = generous.scale(0.12)
        ana = AnalyticalEngine(tiny_app, seed=1)
        des = DESEngine(tiny_app, sim_seconds=4.0, warmup_seconds=1.0, seed=1)
        ana_gap = ana.observe(squeezed, 150.0).latency_p95 - ana.observe(
            generous, 150.0
        ).latency_p95
        des_gap = des.observe(squeezed, 150.0).latency_p95 - des.observe(
            generous, 150.0
        ).latency_p95
        assert ana_gap > 0
        assert des_gap > 0
