"""Fig. 18 — bursty workload handling on SockShop.

Paper: with all workload ranges already traversed, two 10-minute bursts
(400 → ~750 rps and 400 → ~650 rps) are absorbed by switching to the burst
range's stored allocation within one control interval; response stays
below the SLO.
"""

from __future__ import annotations

import numpy as np

from benchmarks._report import emit
from repro.apps import build_app
from repro.bench import format_table
from repro.core import ControlLoop, WorkloadAwarePEMA
from repro.sim import AnalyticalEngine
from repro.workload import BurstWorkload, NoisyTrace, SinusoidalWorkload

TRAIN_STEPS = 120
BURST_STEPS = 25  # 50 minutes at 2-minute intervals


def run_fig18():
    app = build_app("sockshop")
    manager = WorkloadAwarePEMA(
        app.service_names,
        app.slo,
        app.generous_allocation(800.0),
        workload_low=300.0,
        workload_high=800.0,
        min_range_width=62.5,
        split_after=8,
        slope_samples=5,
        seed=51,
    )
    engine = AnalyticalEngine(app, seed=52)
    # Phase 1 (paper: "PEMA has already traversed the resource reduction
    # iterations for all workload ranges"): sweep the whole band.
    train_trace = NoisyTrace(
        SinusoidalWorkload(low=320.0, high=780.0, period=40 * 120.0),
        sigma=0.05,
        seed=53,
    )
    ControlLoop(engine, manager, train_trace, slo=app.slo).run(TRAIN_STEPS)
    # Phase 2: the Fig. 18 burst scenario.
    burst_trace = BurstWorkload(
        400.0,
        [(10 * 120.0, 5 * 120.0, 750.0), (18 * 120.0, 5 * 120.0, 650.0)],
    )
    result = ControlLoop(engine, manager, burst_trace, slo=app.slo).run(
        BURST_STEPS
    )
    return manager, result


def test_fig18_burst(benchmark):
    manager, result = benchmark.pedantic(run_fig18, rounds=1, iterations=1)
    rows = [
        [
            int(result.times[i] / 60),
            round(float(result.workloads[i]), 0),
            round(float(result.total_cpu[i]), 2),
            round(float(result.responses[i] * 1000), 0),
            "*" if result.records[i].violated else "",
        ]
        for i in range(BURST_STEPS)
    ]
    emit(
        "fig18_burst",
        format_table(
            ["minute", "workload_rps", "total_cpu", "response_ms", "viol"],
            rows,
            title="Fig. 18 — SockShop bursts 400→750 and 400→650 rps "
            "(SLO 250 ms; paper: CPU switches with the burst, QoS held)",
        ),
    )
    base = result.total_cpu[5:9].mean()  # steady 400-rps allocation
    burst1 = result.total_cpu[11:15].mean()  # inside the 750-rps burst
    assert burst1 > base * 1.05  # CPU rises for the burst
    after = result.total_cpu[-3:].mean()
    assert after < burst1  # and comes back down
    assert result.violation_rate() <= 0.2
