"""Shared experiment drivers for the benchmark suite.

The evaluation figures repeat a few patterns — run PEMA to convergence at a
fixed workload, find the optimum, run RULE — so they live here with
deterministic seeding and a per-process OPTM cache (the optimum search is
deterministic, and several figures reuse the same (app, workload) points).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps import build_app
from repro.apps.spec import AppSpec
from repro.baselines import OptimumSearch, RuleBasedAutoscaler
from repro.core import ControlLoop, LoopResult, PEMAConfig, PEMAController
from repro.sim import AnalyticalEngine
from repro.workload import ConstantWorkload
from repro.workload.trace import WorkloadTrace

__all__ = [
    "pema_run",
    "PEMARun",
    "optimum_total",
    "rule_total",
    "average_pema_total",
    "clear_caches",
]

_OPTM_CACHE: dict[tuple[str, float], float] = {}


@dataclass
class PEMARun:
    """A completed PEMA run plus its controller (for state inspection)."""

    result: LoopResult
    controller: PEMAController
    engine: AnalyticalEngine
    app: AppSpec


def pema_run(
    app_name: str,
    workload: float | WorkloadTrace,
    n_steps: int,
    *,
    config: PEMAConfig | None = None,
    seed: int = 0,
    interval: float = 120.0,
    headroom: float = 2.0,
    slo: float | None = None,
    on_step=None,
) -> PEMARun:
    """Run plain PEMA on one app from a generous start."""
    app = build_app(app_name)
    trace = (
        ConstantWorkload(workload) if isinstance(workload, (int, float)) else workload
    )
    ref = trace.rate(0.0)
    engine = AnalyticalEngine(app, seed=seed + 1000)
    controller = PEMAController(
        app.service_names,
        slo if slo is not None else app.slo,
        app.generous_allocation(ref, headroom=headroom),
        config or PEMAConfig(),
        seed=seed,
    )
    loop = ControlLoop(engine, controller, trace, interval=interval)
    result = loop.run(n_steps, on_step=on_step)
    return PEMARun(result=result, controller=controller, engine=engine, app=app)


def optimum_total(app_name: str, workload: float, *, restarts: int = 2) -> float:
    """Cached OPTM total CPU for (app, workload)."""
    key = (app_name, round(float(workload), 6))
    if key not in _OPTM_CACHE:
        app = build_app(app_name)
        engine = AnalyticalEngine(app)
        _OPTM_CACHE[key] = OptimumSearch(engine, restarts=restarts).find(
            workload
        ).total_cpu
    return _OPTM_CACHE[key]


def rule_total(
    app_name: str,
    workload: float,
    *,
    n_steps: int = 30,
    seed: int = 0,
    mode: str = "utilization",
) -> float:
    """Converged RULE total CPU for (app, workload)."""
    app = build_app(app_name)
    engine = AnalyticalEngine(app, seed=seed + 2000)
    rule = RuleBasedAutoscaler(app.generous_allocation(workload), mode=mode)
    result = ControlLoop(
        engine, rule, ConstantWorkload(workload), slo=app.slo
    ).run(n_steps)
    return result.settled_total()


def average_pema_total(
    app_name: str,
    workload: float,
    *,
    n_steps: int = 60,
    runs: int = 3,
    config: PEMAConfig | None = None,
    base_seed: int = 0,
) -> float:
    """Mean settled PEMA total across seeds (Fig. 15 averages repeated runs)."""
    totals = [
        pema_run(
            app_name, workload, n_steps, config=config, seed=base_seed + i
        ).result.settled_total()
        for i in range(runs)
    ]
    return float(np.mean(totals))


def clear_caches() -> None:
    """Reset the OPTM cache (tests that tweak calibration need this)."""
    _OPTM_CACHE.clear()
