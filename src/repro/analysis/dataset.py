"""Labelled bottleneck datasets (the paper's §3.2 design study).

The paper intentionally drives chosen microservices into their bottleneck
(squeezing their CPU while everything else stays ample) and records
per-service metrics.  Each (interval, service) pair becomes one sample:
label 1 if that service was squeezed into its bottleneck that interval,
else 0.

Two generators: :func:`generate_dataset` uses the analytical engine with
synthesized tracing features (fast, used by the Table 1 bench);
:func:`generate_dataset_des` runs the request-level simulator with tracing
enabled, so the Jaeger-style ``self_time``/``duration`` features come from
actual recorded spans.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.features import service_features
from repro.apps.spec import AppSpec
from repro.sim.engine import AnalyticalEngine

__all__ = ["BottleneckDataset", "generate_dataset", "generate_dataset_des"]


@dataclass(frozen=True)
class BottleneckDataset:
    """Feature matrix + labels + provenance."""

    X: np.ndarray
    y: np.ndarray
    app_name: str
    bottleneck_services: tuple[str, ...]

    def split(
        self, test_fraction: float = 0.3, seed: int = 0
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Shuffled train/test split: (X_train, y_train, X_test, y_test)."""
        if not 0 < test_fraction < 1:
            raise ValueError("test_fraction must be in (0, 1)")
        n = self.y.size
        order = np.random.default_rng(seed).permutation(n)
        cut = int(round(n * (1.0 - test_fraction)))
        train, test = order[:cut], order[cut:]
        return self.X[train], self.y[train], self.X[test], self.y[test]


def generate_dataset(
    app: AppSpec,
    bottleneck_services: tuple[str, ...],
    *,
    workload_rps: float | None = None,
    n_intervals: int = 120,
    squeeze_range: tuple[float, float] = (0.55, 0.9),
    ample_headroom: float = 2.0,
    seed: int = 0,
) -> BottleneckDataset:
    """Generate one (app, bottleneck set) study.

    Each interval randomly bottlenecks a subset of the designated services
    (possibly none — negative-only intervals keep the classes balanced);
    squeezed services get ``squeeze_range``-fraction of their bottleneck
    allocation, everything else twice its bottleneck.
    """
    unknown = set(bottleneck_services) - set(app.service_names)
    if unknown:
        raise ValueError(f"unknown services: {sorted(unknown)}")
    if not bottleneck_services:
        raise ValueError("need at least one bottleneck service")
    rng = np.random.default_rng(seed)
    workload = workload_rps if workload_rps is not None else app.reference_workload
    engine = AnalyticalEngine(app, seed=seed + 13)
    ample = engine.bottleneck_allocation(workload).scale(ample_headroom)
    bottleneck = engine.bottleneck_allocation(workload)

    rows: list[np.ndarray] = []
    labels: list[int] = []
    for _ in range(n_intervals):
        squeezed = tuple(
            name for name in bottleneck_services if rng.random() < 0.5
        )
        alloc = ample
        for name in squeezed:
            factor = rng.uniform(*squeeze_range)
            alloc = alloc.with_value(name, max(bottleneck[name] * factor, 0.05))
        metrics = engine.observe(alloc, workload)
        for name in app.service_names:
            rows.append(service_features(app, metrics, name, rng))
            labels.append(1 if name in squeezed else 0)
    return BottleneckDataset(
        X=np.asarray(rows),
        y=np.asarray(labels, dtype=np.int64),
        app_name=app.name,
        bottleneck_services=bottleneck_services,
    )


def generate_dataset_des(
    app: AppSpec,
    bottleneck_services: tuple[str, ...],
    *,
    workload_rps: float | None = None,
    n_intervals: int = 24,
    sim_seconds: float = 4.0,
    squeeze_range: tuple[float, float] = (0.15, 0.4),
    ample_headroom: float = 2.0,
    seed: int = 0,
) -> BottleneckDataset:
    """DES-backed study: tracing features from real recorded spans.

    Event-driven simulation is orders of magnitude slower than the closed
    forms, so the defaults are small; the squeeze range sits below the
    DES's own (burstiness-dependent) knee so that labels are observable.
    """
    from repro.sim.des.engine import DESEngine
    from repro.sim.des.simulator import SimConfig

    unknown = set(bottleneck_services) - set(app.service_names)
    if unknown:
        raise ValueError(f"unknown services: {sorted(unknown)}")
    if not bottleneck_services:
        raise ValueError("need at least one bottleneck service")
    rng = np.random.default_rng(seed)
    workload = workload_rps if workload_rps is not None else (
        app.reference_workload * 0.4
    )
    reference = AnalyticalEngine(app, seed=seed + 13)
    knee = reference.bottleneck_allocation(workload)
    ample = knee.scale(ample_headroom)
    des = DESEngine(
        app,
        config=SimConfig(trace=True),
        sim_seconds=sim_seconds,
        warmup_seconds=1.0,
        seed=seed + 29,
    )

    rows: list[np.ndarray] = []
    labels: list[int] = []
    for _ in range(n_intervals):
        squeezed = tuple(
            name for name in bottleneck_services if rng.random() < 0.5
        )
        alloc = ample
        for name in squeezed:
            factor = rng.uniform(*squeeze_range)
            alloc = alloc.with_value(name, max(knee[name] * factor, 0.02))
        metrics = des.observe(alloc, workload)
        spans = des.last_traces.spans if des.last_traces is not None else []
        by_service: dict[str, list] = {}
        for span in spans:
            by_service.setdefault(span.service, []).append(span)
        for name in app.service_names:
            svc = metrics.services[name]
            spec = app.service(name)
            mine = by_service.get(name, ())
            if mine:
                self_time = float(np.mean([s.cpu_time for s in mine]))
                duration = float(np.mean([s.duration for s in mine]))
            else:
                self_time = spec.cpu_demand
                duration = spec.latency_floor
            mem = spec.memory_mb * (0.55 + 0.25 * svc.utilization)
            rows.append(
                np.asarray(
                    [
                        svc.utilization,
                        svc.throttle_seconds,
                        mem,
                        self_time,
                        duration,
                    ]
                )
            )
            labels.append(1 if name in squeezed else 0)
    return BottleneckDataset(
        X=np.asarray(rows),
        y=np.asarray(labels, dtype=np.int64),
        app_name=app.name,
        bottleneck_services=bottleneck_services,
    )
