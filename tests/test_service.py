"""Tests for repro.service — the always-on control plane.

The load-bearing property: a service run driven over a given
(spec, repeat) produces a decision history byte-identical to the
offline experiment runner's unit payload — across apps, seeds,
autoscaler kinds, hooks, and capture channels.
"""

import asyncio
import json
import urllib.error
import urllib.request
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.experiments.runner import _run_unit_worker
from repro.experiments.spec import ExperimentSpec
from repro.service import (
    LOAD_DRIVERS,
    STATE_STORES,
    ConstantDriver,
    Guardian,
    MemoryBackend,
    MetricSample,
    Orchestrator,
    ReplayDriver,
    ServiceError,
    ServiceStateStore,
    service_session,
    service_state_key,
)
from repro.sweeps import SweepStore, canonical_key


def make_spec(**overrides) -> ExperimentSpec:
    data = {
        "name": "svc",
        "app": "sockshop",
        "workload": {
            "kind": "sinusoid",
            "params": {"low": 150.0, "high": 650.0, "period": 5000.0},
        },
        "n_steps": 8,
        "seed": 0,
    }
    data.update(overrides)
    return ExperimentSpec.from_dict(data)


def stream_offline_pair(spec: ExperimentSpec, repeat: int = 0):
    """(streamed payload, offline payload) for one unit."""
    offline = _run_unit_worker(spec.to_dict(), repeat)

    async def run():
        orch = Orchestrator()
        guardian = orch.register(spec, repeat=repeat)
        await orch.start()
        await orch.drive()
        await orch.shutdown()
        return guardian.result_payload()

    return asyncio.run(run()), offline


def dumps(payload) -> str:
    return json.dumps(payload, sort_keys=True)


class TestStreamedOfflineParity:
    @settings(max_examples=10, deadline=None)
    @given(
        app=st.sampled_from(
            ("sockshop", "hotelreservation", "trainticket")
        ),
        seed=st.integers(min_value=0, max_value=50),
        kind=st.sampled_from(("pema", "rule", "static")),
        repeat=st.integers(min_value=0, max_value=2),
    )
    def test_byte_identical_across_apps_and_seeds(
        self, app, seed, kind, repeat
    ):
        spec = make_spec(
            app=app, seed=seed, autoscaler={"kind": kind}, n_steps=6,
            repeats=3,
        )
        streamed, offline = stream_offline_pair(spec, repeat)
        assert dumps(streamed) == dumps(offline)

    def test_hooks_and_capture_channel(self):
        spec = make_spec(
            n_steps=10,
            autoscaler={"kind": "pema"},
            hooks=(
                {"kind": "set_slo", "params": {"at": 4, "slo": 0.9}},
                {"kind": "set_cpu_speed", "params": {"at": 6, "speed": 0.8}},
            ),
            capture=["manager_state"],
        )
        streamed, offline = stream_offline_pair(spec)
        assert "manager_state" in streamed
        assert dumps(streamed) == dumps(offline)
        # The live SLO hook shows up in the records, as offline.
        assert streamed["records"][5]["slo"] == 0.9

    def test_workload_aware_manager_parity(self):
        spec = make_spec(
            n_steps=8,
            autoscaler={
                "kind": "workload_aware_pema",
                "params": {
                    "start_rps": 400.0,
                    "workload_low": 150.0,
                    "workload_high": 650.0,
                    "min_range_width": 62.5,
                    "split_after": 4,
                },
            },
            capture=["manager_state"],
        )
        streamed, offline = stream_offline_pair(spec)
        assert dumps(streamed) == dumps(offline)

    def test_replay_driver_resumes_mid_schedule(self):
        # Driving in two bursts continues the same trace schedule.
        spec = make_spec(n_steps=9)
        offline = _run_unit_worker(spec.to_dict(), 0)

        async def run():
            orch = Orchestrator()
            guardian = orch.register(spec)
            await orch.start()
            await orch.drive(4)
            await orch.drive()  # the remaining 5
            await orch.shutdown()
            return guardian.result_payload()

        assert dumps(asyncio.run(run())) == dumps(offline)


class TestGuardian:
    def test_out_of_order_tick_is_an_error(self):
        guardian = Guardian("a", make_spec())
        guardian.tick(MetricSample(app="a", rps=200.0, step=0))
        with pytest.raises(ServiceError, match="expected 1"):
            guardian.tick(MetricSample(app="a", rps=200.0, step=0))

    def test_unstepped_samples_use_next_expected(self):
        guardian = Guardian("a", make_spec())
        guardian.tick(MetricSample(app="a", rps=200.0))
        guardian.tick(MetricSample(app="a", rps=200.0))
        assert guardian.steps_done == 2
        assert not guardian.complete

    def test_state_and_status_shapes(self):
        guardian = Guardian("a", make_spec())
        guardian.tick(MetricSample(app="a", rps=200.0))
        state = guardian.state()
        assert state["step"] == 1
        assert state["total_cpu"] == pytest.approx(
            sum(cpu for _, cpu in state["allocation"])
        )
        status = guardian.status()
        assert status["steps_done"] == 1
        assert status["queue_depth"] == 0
        assert status["rescale"]["applies"] == 1


class TestBackpressure:
    def test_bounded_queue_blocks_producer(self):
        async def run():
            orch = Orchestrator(queue_size=2)
            orch.register(make_spec())  # not started: nothing consumes
            await orch.submit(MetricSample(app="svc", rps=1.0))
            await orch.submit(MetricSample(app="svc", rps=1.0))
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(
                    orch.submit(MetricSample(app="svc", rps=1.0)),
                    timeout=0.05,
                )
            # Once consumers start, the backlog drains and ticks land.
            await orch.start()
            await orch.join()
            assert orch.guardians["svc"].steps_done == 2
            await orch.shutdown()

        asyncio.run(run())

    def test_drive_through_tiny_queue_completes(self):
        spec = make_spec(n_steps=12)
        offline = _run_unit_worker(spec.to_dict(), 0)

        async def run():
            orch = Orchestrator(queue_size=1)
            guardian = orch.register(spec)
            await orch.start()
            await orch.drive()
            await orch.shutdown()
            return guardian.result_payload()

        assert dumps(asyncio.run(run())) == dumps(offline)


class TestGracefulShutdown:
    def test_pending_samples_drain_before_flush(self):
        async def run():
            store = ServiceStateStore(MemoryBackend())
            orch = Orchestrator(store=store)
            guardian = orch.register(make_spec(n_steps=4))
            for step in range(4):
                await guardian.queue.put(
                    MetricSample(app="svc", rps=100.0, step=step)
                )
            await orch.start()  # consumers start with a backlog
            summary = await orch.shutdown()
            return guardian, summary, store

        guardian, summary, store = asyncio.run(run())
        assert guardian.steps_done == 4
        assert summary["svc"]["complete"]
        assert summary["svc"]["unit_entry"]
        assert store.unit_entries == 1

    def test_partial_run_never_lands_under_unit_key(self):
        spec = make_spec(n_steps=10)

        async def run():
            backend = MemoryBackend()
            orch = Orchestrator(store=ServiceStateStore(backend))
            orch.register(spec)
            await orch.start()
            await orch.drive(3)  # 3 of 10 steps
            summary = await orch.shutdown()
            return backend, summary

        backend, summary = asyncio.run(run())
        assert not summary["svc"]["complete"]
        assert not summary["svc"]["unit_entry"]
        assert backend.get_raw(SweepStore.unit_key(spec, 0)) is None
        snap = backend.get_raw(
            service_state_key("svc", spec.to_dict(), 0)
        )
        assert snap["step"] == 3 and not snap["complete"]

    def test_errored_guardian_is_reported_not_fatal(self):
        async def run():
            orch = Orchestrator(store=ServiceStateStore(MemoryBackend()))
            guardian = orch.register(make_spec(n_steps=4))
            await orch.start()
            # An out-of-order tick poisons this guardian...
            await orch.submit(MetricSample(app="svc", rps=100.0, step=2))
            # ...and later samples are dropped instead of wedging it.
            await orch.submit(MetricSample(app="svc", rps=100.0, step=0))
            await orch.join()
            summary = await orch.shutdown()
            return guardian, summary

        guardian, summary = asyncio.run(run())
        assert "expected 0" in guardian.error
        assert summary["svc"]["error"] == guardian.error
        assert not summary["svc"]["unit_entry"]

    def test_shutdown_interrupts_drive(self):
        async def run():
            orch = Orchestrator()
            orch.register(make_spec(n_steps=5000))
            await orch.start()
            task = asyncio.create_task(orch.drive(tick=0.001))
            await asyncio.sleep(0.02)
            orch.request_shutdown()
            submitted = await task
            await orch.shutdown()
            return submitted

        assert 0 < asyncio.run(run()) < 5000


class TestOrchestrator:
    def test_duplicate_and_unknown_apps(self):
        async def run():
            orch = Orchestrator()
            orch.register(make_spec())
            with pytest.raises(ServiceError, match="already registered"):
                orch.register(make_spec())
            with pytest.raises(ServiceError, match="unknown app"):
                await orch.submit(MetricSample(app="nope", rps=1.0))
            with pytest.raises(ServiceError, match="unknown app"):
                orch.state("nope")

        asyncio.run(run())

    def test_unregister_forgets_everything(self):
        async def run():
            orch = Orchestrator()
            orch.register(make_spec())
            await orch.start()
            await orch.drive(2)
            orch.unregister("svc")
            assert orch.status()["apps"] == []
            assert orch.store.decision_count("svc") == 0
            await orch.shutdown()

        asyncio.run(run())

    def test_decisions_query_since_and_limit(self):
        async def run():
            orch = Orchestrator()
            orch.register(make_spec(n_steps=6))
            await orch.start()
            await orch.drive()
            page = orch.decisions("svc", since=2, limit=2)
            assert [d["step"] for d in page["decisions"]] == [2, 3]
            assert page["total"] == 6
            await orch.shutdown()

        asyncio.run(run())

    def test_constant_driver_drive(self):
        async def run():
            orch = Orchestrator()
            guardian = orch.register(make_spec(n_steps=3))
            await orch.start()
            await orch.drive(driver=ConstantDriver(123.0))
            await orch.shutdown()
            return guardian

        guardian = asyncio.run(run())
        assert [r.workload for r in guardian.records] == [123.0] * 3


class TestStateStore:
    def test_snapshot_every_persists_periodically(self):
        backend = MemoryBackend()
        store = ServiceStateStore(backend, snapshot_every=2)

        async def run():
            orch = Orchestrator(store=store)
            orch.register(make_spec(n_steps=6))
            await orch.start()
            await orch.drive()
            await orch.shutdown()

        asyncio.run(run())
        # Steps 2, 4, 6 plus the flush snapshot (overwrites same key).
        assert store.snapshots == 4
        assert backend.stats.writes >= 4

    def test_state_key_is_disjoint_from_unit_key(self):
        spec = make_spec()
        assert canonical_key(
            service_state_key("svc", spec.to_dict(), 0)
        ) != canonical_key(SweepStore.unit_key(spec, 0))

    def test_directory_backend_is_the_sweep_store(self, tmp_path):
        backend = STATE_STORES.build("directory", root=str(tmp_path))
        assert isinstance(backend, SweepStore)

    def test_registries_have_descriptions(self):
        for registry in (LOAD_DRIVERS, STATE_STORES):
            entries = dict(registry.entries())
            assert entries
            for name, description in entries.items():
                assert description and "\n" not in description

    def test_complete_flush_warms_sweep_cache(self, tmp_path):
        spec = make_spec(n_steps=5)
        store = ServiceStateStore(SweepStore(str(tmp_path)))
        with service_session([spec], store=store) as runtime:
            runtime.drive()
        cached = SweepStore(str(tmp_path)).get_result(spec, 0)
        assert dumps(cached) == dumps(_run_unit_worker(spec.to_dict(), 0))


class TestDrivers:
    def test_registry_builds_and_rejects_unknown_params(self):
        assert isinstance(LOAD_DRIVERS.build("replay"), ReplayDriver)
        driver = LOAD_DRIVERS.build("constant", rps=7.0)
        assert driver.rps == 7.0
        with pytest.raises(TypeError):
            LOAD_DRIVERS.build("replay", nope=1)
        with pytest.raises(TypeError):
            LOAD_DRIVERS.build("constant", nope=1)
        with pytest.raises(ValueError):
            ConstantDriver(-1.0)

    def test_replay_rates_match_trace(self):
        guardian = Guardian("a", make_spec(n_steps=4))
        rates = ReplayDriver().rates(guardian, 4)
        trace = guardian.unit.trace
        interval = guardian.spec.interval
        assert list(rates) == [
            trace.rate(step * interval) for step in range(4)
        ]


class TestRuntimeAndHTTP:
    def test_http_endpoints(self):
        spec = make_spec(n_steps=4)
        with service_session([spec], http=True) as runtime:
            runtime.drive()
            base = runtime.url

            def get(path):
                with urllib.request.urlopen(base + path, timeout=10) as r:
                    return json.loads(r.read())

            assert "endpoints" in get("/")
            status = get("/apps")
            assert status["ticks"] == 4
            assert get("/apps/svc")["complete"]
            page = get("/decisions?app=svc&since=3")
            assert [d["step"] for d in page["decisions"]] == [3]
            assert get("/state?app=svc")["step"] == 4

            with pytest.raises(urllib.error.HTTPError) as err:
                get("/state?app=missing")
            assert err.value.code == 404
            with pytest.raises(urllib.error.HTTPError) as err:
                get("/decisions")
            assert err.value.code == 400
            with pytest.raises(urllib.error.HTTPError) as err:
                get("/decisions?app=svc&since=x")
            assert err.value.code == 400
            with pytest.raises(urllib.error.HTTPError) as err:
                get("/nope")
            assert err.value.code == 404

            req = urllib.request.Request(
                base + "/shutdown", method="POST", data=b""
            )
            with urllib.request.urlopen(req, timeout=10) as r:
                assert json.loads(r.read()) == {"shutdown": "requested"}
            assert runtime.wait_shutdown_requested(timeout=5)

    def test_runtime_rejects_calls_before_start(self):
        from repro.service import ServiceRuntime

        runtime = ServiceRuntime()
        with pytest.raises(ServiceError, match="not running"):
            runtime.status()

    def test_session_shuts_down_on_error(self, tmp_path):
        spec = make_spec(n_steps=2)
        store = ServiceStateStore(SweepStore(str(tmp_path)))
        with pytest.raises(RuntimeError, match="boom"):
            with service_session([spec], store=store) as runtime:
                runtime.drive()
                raise RuntimeError("boom")
        # The flush still happened on the way out.
        assert SweepStore(str(tmp_path)).get_result(spec, 0) is not None


class TestServeCLI:
    def write_specs(self, tmp_path: Path, n: int = 2) -> Path:
        spec_dir = tmp_path / "specs"
        spec_dir.mkdir()
        for i in range(n):
            spec = make_spec(name=f"app{i}", seed=i, n_steps=4)
            (spec_dir / f"app{i}.json").write_text(spec.to_json())
        return spec_dir

    def test_serve_streams_and_reports(self, tmp_path, capsys):
        spec_dir = self.write_specs(tmp_path)
        out = tmp_path / "summary.json"
        assert main([
            "serve", "--spec", str(spec_dir), "--port", "0",
            "--state-dir", str(tmp_path / "state"), "--out", str(out),
        ]) == 0
        printed = capsys.readouterr().out
        assert "2 app(s)" in printed
        assert "listening on http://127.0.0.1:" in printed
        assert "streamed 8 tick(s)" in printed
        summary = json.loads(out.read_text())
        assert summary["flush"]["app0"]["unit_entry"]
        assert summary["flush"]["app1"]["unit_entry"]
        rows = {row["app"]: row for row in summary["status"]["apps"]}
        assert rows["app0"]["complete"] and rows["app1"]["complete"]

    def test_serve_no_http_constant_driver(self, tmp_path, capsys):
        spec_dir = self.write_specs(tmp_path, n=1)
        assert main([
            "serve", "--spec", str(spec_dir), "--no-http",
            "--rps", "300", "--steps", "2",
        ]) == 0
        printed = capsys.readouterr().out
        assert "listening" not in printed
        assert "streamed 2 tick(s)" in printed

    def test_serve_bad_inputs(self, tmp_path, capsys):
        spec_dir = self.write_specs(tmp_path, n=1)
        assert main(["serve", "--spec", str(tmp_path / "none")]) == 2
        assert main([
            "serve", "--spec", str(spec_dir), "--driver", "nope",
            "--no-http",
        ]) == 2
        assert main([
            "serve", "--spec", str(spec_dir), "--store", "directory",
            "--no-http",
        ]) == 2
        capsys.readouterr()

    def test_serve_dedups_app_ids(self, tmp_path, capsys):
        spec_dir = tmp_path / "specs"
        spec_dir.mkdir()
        for stem in ("a", "b"):
            (spec_dir / f"{stem}.json").write_text(
                make_spec(name="same", n_steps=2).to_json()
            )
        assert main([
            "serve", "--spec", str(spec_dir), "--no-http",
        ]) == 0
        printed = capsys.readouterr().out
        assert "same" in printed and "same-2" in printed
