"""Measurement window for the DES: latencies + per-service counters."""

from __future__ import annotations

import numpy as np

from repro.sim.des.server import ServiceServer
from repro.sim.types import IntervalMetrics, ServiceMetrics

__all__ = ["MeasurementWindow"]


class MeasurementWindow:
    """Accumulates one observation interval's samples."""

    def __init__(self) -> None:
        self.latencies: list[float] = []
        self.started = 0
        self.completed = 0

    def record_completion(self, latency: float) -> None:
        if latency < 0:
            raise ValueError("negative latency")
        self.latencies.append(latency)
        self.completed += 1

    def build(
        self,
        servers: dict[str, ServiceServer],
        duration: float,
        workload_rps: float,
        *,
        scale_to_interval: float | None = None,
    ) -> IntervalMetrics:
        """Summarize the window into :class:`IntervalMetrics`.

        ``scale_to_interval`` rescales throttle seconds from the simulated
        duration to a nominal monitoring interval so DES output is unit-
        compatible with the analytical engine.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        scale = 1.0 if scale_to_interval is None else scale_to_interval / duration
        services: dict[str, ServiceMetrics] = {}
        total_periods = max(int(round(duration / next(iter(servers.values())).period)), 1) if servers else 1
        for name, server in servers.items():
            usage_cores = server.usage_seconds / duration
            samples = list(server.period_samples)
            # Idle periods produce no sample events; pad with zeros so
            # percentiles reflect the full interval.
            if len(samples) < total_periods:
                samples.extend([0.0] * (total_periods - len(samples)))
            p90 = float(np.percentile(samples, 90)) if samples else 0.0
            services[name] = ServiceMetrics(
                utilization=min(usage_cores / server.alloc, 1.0),
                throttle_seconds=server.throttle_seconds * scale,
                usage_cores=usage_cores,
                usage_p90_cores=min(p90, server.alloc),
            )
        if self.latencies:
            arr = np.asarray(self.latencies)
            p95 = float(np.percentile(arr, 95))
            mean = float(arr.mean())
        else:
            p95 = mean = 0.0
        return IntervalMetrics(
            latency_p95=p95,
            workload_rps=workload_rps,
            services=services,
            latency_mean=mean,
            completed_requests=self.completed,
        )
