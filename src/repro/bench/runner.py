"""Shared experiment drivers for the benchmark suite.

The evaluation figures repeat a few patterns — run PEMA to convergence at
a fixed workload, find the optimum, run RULE — so they live here as thin
wrappers over the declarative experiment layer
(:mod:`repro.experiments`): each helper builds an
:class:`~repro.experiments.ExperimentSpec` and executes it through the
one shared runner, so a figure cell produced here is bit-identical to the
same spec run from the CLI (``repro experiment --spec``) or from Python.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.apps.spec import AppSpec
from repro.core import LoopResult, PEMAConfig, PEMAController
from repro.experiments import (
    AutoscalerSpec,
    EngineSpec,
    ExperimentSpec,
    WorkloadSpec,
    clear_optimum_cache,
    run_experiment,
    run_unit,
)
from repro.experiments import optimum_total as _optimum_total
from repro.sim import AnalyticalEngine
from repro.workload.trace import WorkloadTrace

__all__ = [
    "pema_run",
    "PEMARun",
    "pema_spec",
    "rule_spec",
    "optimum_total",
    "rule_total",
    "average_pema_total",
    "clear_caches",
]


@dataclass
class PEMARun:
    """A completed PEMA run plus its controller (for state inspection)."""

    result: LoopResult
    controller: PEMAController
    engine: AnalyticalEngine
    app: AppSpec


def pema_spec(
    app_name: str,
    workload: float,
    n_steps: int,
    *,
    config: PEMAConfig | None = None,
    seed: int = 0,
    repeats: int = 1,
    interval: float = 120.0,
    headroom: float = 2.0,
    slo: float | None = None,
) -> ExperimentSpec:
    """The spec behind :func:`pema_run` / :func:`average_pema_total`."""
    return ExperimentSpec(
        app=app_name,
        workload=WorkloadSpec.constant(workload),
        n_steps=n_steps,
        autoscaler=AutoscalerSpec(
            "pema", asdict(config) if config is not None else {}
        ),
        interval=interval,
        slo=slo,
        headroom=headroom,
        seed=seed,
        repeats=repeats,
    )


def rule_spec(
    app_name: str,
    workload: float,
    *,
    n_steps: int = 30,
    seed: int = 0,
    mode: str = "utilization",
) -> ExperimentSpec:
    """The spec behind :func:`rule_total` (independent noise stream)."""
    return ExperimentSpec(
        app=app_name,
        workload=WorkloadSpec.constant(workload),
        n_steps=n_steps,
        autoscaler=AutoscalerSpec("rule", {"mode": mode}),
        engine=EngineSpec(seed_offset=2000),
        seed=seed,
    )


def pema_run(
    app_name: str,
    workload: float | WorkloadTrace,
    n_steps: int,
    *,
    config: PEMAConfig | None = None,
    seed: int = 0,
    interval: float = 120.0,
    headroom: float = 2.0,
    slo: float | None = None,
    on_step=None,
) -> PEMARun:
    """Run plain PEMA on one app from a generous start.

    ``workload`` may be a rate (a constant-workload spec) or an arbitrary
    :class:`WorkloadTrace` object, which is passed through the runner's
    trace override for scenarios without a registry encoding.
    """
    trace: WorkloadTrace | None
    if isinstance(workload, (int, float)):
        rps, trace = float(workload), None
    else:
        rps, trace = workload.rate(0.0), workload
    spec = pema_spec(
        app_name,
        rps,
        n_steps,
        config=config,
        seed=seed,
        interval=interval,
        headroom=headroom,
        slo=slo,
    )
    unit = run_unit(spec, trace=trace, on_step=on_step)
    assert unit.result is not None
    return PEMARun(
        result=unit.result,
        controller=unit.autoscaler,
        engine=unit.engine,
        app=unit.app,
    )


def optimum_total(app_name: str, workload: float, *, restarts: int = 2) -> float:
    """Cached OPTM total CPU for (app, workload)."""
    return _optimum_total(app_name, workload, restarts=restarts)


def rule_total(
    app_name: str,
    workload: float,
    *,
    n_steps: int = 30,
    seed: int = 0,
    mode: str = "utilization",
) -> float:
    """Converged RULE total CPU for (app, workload)."""
    spec = rule_spec(app_name, workload, n_steps=n_steps, seed=seed, mode=mode)
    return run_experiment(spec).mean_settled_total()


def average_pema_total(
    app_name: str,
    workload: float,
    *,
    n_steps: int = 60,
    runs: int = 3,
    config: PEMAConfig | None = None,
    base_seed: int = 0,
) -> float:
    """Mean settled PEMA total across seeds (Fig. 15 averages repeated runs)."""
    spec = pema_spec(
        app_name, workload, n_steps, config=config, seed=base_seed, repeats=runs
    )
    return run_experiment(spec).mean_settled_total()


def clear_caches() -> None:
    """Reset the OPTM cache (tests that tweak calibration need this)."""
    clear_optimum_cache()
