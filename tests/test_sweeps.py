"""Sweep orchestration: grids, content-addressed store, scheduler, aggregates."""

import json
import threading
from pathlib import Path

import numpy as np
import pytest

import repro.baselines
import repro.experiments.runner as runner_mod
from repro.experiments import (
    clear_optimum_cache,
    optimum_cache_info,
    optimum_store,
    optimum_total,
    run_sweep,
)
from repro.sweeps import (
    METRIC_NAMES,
    GridRun,
    SweepAxis,
    SweepGrid,
    SweepStore,
    artifact_metrics,
    axis_table,
    canonical_key,
    cells_table,
    grid_summary,
    grid_summary_json,
    group_reduce,
    run_grid,
    run_sweep_cached,
    set_path,
)
from tests.conftest import make_small_grid as small_grid
from tests.conftest import make_sweep_spec as base_spec


class TestSetPath:
    def test_nested_creation(self):
        d = {}
        set_path(d, "a.b.c", 1)
        assert d == {"a": {"b": {"c": 1}}}

    def test_copies_values(self):
        value = {"x": 1}
        d = {}
        set_path(d, "a", value)
        value["x"] = 2
        assert d["a"] == {"x": 1}

    def test_non_mapping_descend_rejected(self):
        with pytest.raises(ValueError, match="non-mapping"):
            set_path({"a": 3}, "a.b", 1)

    def test_malformed_path_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            set_path({}, "a..b", 1)


class TestSweepAxis:
    def test_scalar_labels(self):
        axis = SweepAxis("alpha", (0.1, 0.5), path="autoscaler.params.alpha")
        assert axis.label(0) == "0.1"
        assert axis.overrides(1) == {"autoscaler.params.alpha": 0.5}

    def test_zipped_values(self):
        axis = SweepAxis(
            "cell",
            ({"label": "a@1", "app": "a", "workload": 1.0},),
        )
        assert axis.label(0) == "a@1"
        assert axis.overrides(0) == {"app": "a", "workload": 1.0}

    def test_zipped_without_label_uses_index(self):
        axis = SweepAxis("cell", ({"app": "a"}, {"app": "b"}))
        assert axis.label(1) == "1"

    def test_zipped_scalar_value_rejected(self):
        with pytest.raises(ValueError, match="override mapping"):
            SweepAxis("cell", (1.0,))

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            SweepAxis("cell", ())

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown SweepAxis"):
            SweepAxis.from_dict({"name": "a", "values": [1], "nope": 2})


class TestSweepGrid:
    def test_cartesian_expansion_last_axis_fastest(self):
        cells = small_grid().cells()
        assert [c.coords for c in cells] == [
            {"workload": "600", "alpha": "0.4"},
            {"workload": "600", "alpha": "0.5"},
            {"workload": "700", "alpha": "0.4"},
            {"workload": "700", "alpha": "0.5"},
        ]
        assert cells[0].spec.name == "g[workload=600,alpha=0.4]"
        assert cells[2].spec.workload.params["rps"] == 700.0
        assert cells[1].spec.autoscaler.params["alpha"] == 0.5

    def test_zipped_axis_moves_fields_together(self):
        grid = SweepGrid(
            name="z",
            base=base_spec(),
            axes=(
                {"name": "cell", "values": [
                    {"label": "tt", "app": "trainticket", "workload": 225.0,
                     "seed": 7},
                    {"label": "ss", "app": "sockshop", "workload": 700.0,
                     "seed": 9},
                ]},
            ),
        )
        specs = grid.specs()
        assert [s.app for s in specs] == ["trainticket", "sockshop"]
        assert [s.seed for s in specs] == [7, 9]

    def test_zero_axes_single_cell(self):
        grid = SweepGrid(name="one", base=base_spec(name="cell0"))
        cells = grid.cells()
        assert len(cells) == 1 and grid.n_cells == 1
        assert cells[0].spec.name == "cell0"  # explicit name preserved

    def test_json_round_trip(self, tmp_path):
        grid = small_grid(title="a title")
        assert SweepGrid.from_json(grid.to_json()) == grid
        path = grid.write(tmp_path / "grid.json")
        assert SweepGrid.read(path) == grid

    def test_duplicate_axis_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            small_grid(axes=(
                {"name": "a", "path": "seed", "values": [1]},
                {"name": "a", "path": "n_steps", "values": [2]},
            ))

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown SweepGrid"):
            SweepGrid.from_dict(
                {"name": "g", "base": base_spec().to_dict(), "bogus": 1}
            )

    def test_validate_resolves_registries(self):
        grid = small_grid(axes=(
            {"name": "engine", "path": "engine.kind", "values": ["bogus"]},
        ))
        with pytest.raises(KeyError, match="unknown engine"):
            grid.validate()


class TestSweepStore:
    def test_round_trip_and_stats(self, tmp_path):
        store = SweepStore(tmp_path / "cache")
        spec = base_spec()
        assert store.get_result(spec, 0) is None
        payload = {"records": [{"step": 0}]}
        store.put_result(spec, 0, payload)
        assert store.get_result(spec, 0) == payload
        assert len(store) == 1
        assert store.stats.hits == 1 and store.stats.misses == 1
        assert store.stats.writes == 1

    def test_keys_are_content_addressed(self, tmp_path):
        store = SweepStore(tmp_path)
        spec = base_spec()
        assert store.path_for(store.unit_key(spec, 0)) != store.path_for(
            store.unit_key(spec, 1)
        )
        assert store.path_for(store.unit_key(spec, 0)) != store.path_for(
            store.unit_key(base_spec(seed=1), 0)
        )
        # Same computation -> same entry, even via a different handle.
        other = SweepStore(tmp_path)
        assert other.path_for(other.unit_key(base_spec(), 0)) == store.path_for(
            store.unit_key(spec, 0)
        )

    def test_canonical_key_order_independent(self):
        assert canonical_key({"a": 1, "b": 2}) == canonical_key({"b": 2, "a": 1})

    def test_truncated_entry_is_a_miss(self, tmp_path):
        store = SweepStore(tmp_path)
        spec = base_spec()
        path = store.put_result(spec, 0, {"records": []})
        path.write_text(path.read_text()[: 20])  # simulate a crashed writer
        assert store.get_result(spec, 0) is None
        assert store.stats.corrupt == 1
        # Recompute-and-overwrite repairs the entry.
        store.put_result(spec, 0, {"records": []})
        assert store.get_result(spec, 0) == {"records": []}

    def test_foreign_json_is_a_miss(self, tmp_path):
        store = SweepStore(tmp_path)
        spec = base_spec()
        path = store.path_for(store.unit_key(spec, 0))
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({"something": "else"}))
        assert store.get_result(spec, 0) is None
        assert store.stats.corrupt == 1

    def test_wrong_shape_payload_is_a_miss(self, tmp_path):
        store = SweepStore(tmp_path)
        spec = base_spec()
        store.put_raw(store.unit_key(spec, 0), {"not": "a result"})
        assert store.get_result(spec, 0) is None
        assert store.stats.corrupt == 1

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        store = SweepStore(tmp_path)
        store.put_result(base_spec(), 0, {"records": []})
        leftovers = [
            p for p in (tmp_path).rglob("*") if p.is_file()
            and p.suffix != ".json"
        ]
        assert leftovers == []

    def test_concurrent_writers_do_not_clobber(self, tmp_path):
        store = SweepStore(tmp_path)
        spec = base_spec()
        payload = {"records": [{"step": i} for i in range(50)]}
        errors = []

        def write(handle):
            try:
                for _ in range(20):
                    handle.put_result(spec, 0, payload)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=write, args=(SweepStore(tmp_path),))
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert store.get_result(spec, 0) == payload
        assert len(store) == 1

    def test_clear(self, tmp_path):
        store = SweepStore(tmp_path)
        store.put_result(base_spec(), 0, {"records": []})
        assert store.clear() == 1
        assert len(store) == 0


class TestScheduler:
    def test_matches_run_sweep(self):
        specs = [base_spec(repeats=2), base_spec(seed=5)]
        expected = run_sweep(specs)
        artifacts, report = run_sweep_cached(specs)
        assert [a.to_json() for a in artifacts] == [
            a.to_json() for a in expected
        ]
        assert report.units == 3 and report.cache_hits == 0

    def test_parallel_byte_identical(self, tmp_path):
        specs = small_grid().specs()
        serial, _ = run_sweep_cached(specs)
        parallel, _ = run_sweep_cached(
            specs, store=SweepStore(tmp_path), parallel=2, chunk_size=3
        )
        assert [a.to_json() for a in serial] == [a.to_json() for a in parallel]

    def test_warm_cache_full_hits(self, tmp_path):
        store = SweepStore(tmp_path)
        grid = small_grid()
        cold = run_grid(grid, store=store)
        warm = run_grid(grid, store=store)
        assert cold.report.cache_hits == 0
        assert warm.report.cache_hits == warm.report.units == 8
        assert warm.report.computed == 0
        assert grid_summary_json(warm) == grid_summary_json(cold)

    def test_reuse_false_refreshes(self, tmp_path):
        store = SweepStore(tmp_path)
        grid = small_grid()
        run_grid(grid, store=store)
        refreshed = run_grid(grid, store=store, reuse=False)
        assert refreshed.report.cache_hits == 0
        assert refreshed.report.computed == refreshed.report.units

    def test_cache_shared_across_grids(self, tmp_path):
        """Grids sweeping overlapping points reuse each other's cells,
        even though each grid stamps its own name into the cell specs."""
        store = SweepStore(tmp_path)
        run_grid(small_grid(), store=store)
        overlapping = small_grid(name="other_figure", axes=(
            {"name": "workload", "path": "workload", "values": [700.0]},
            {"name": "alpha", "path": "autoscaler.params.alpha",
             "values": [0.4, 0.5]},
        ))
        assert [c.spec.name for c in overlapping.cells()] != [
            c.spec.name for c in small_grid().cells()[:2]
        ]
        warm = run_grid(overlapping, store=store)
        assert warm.report.cache_hits == warm.report.units == 4

    def test_unit_key_ignores_cosmetic_name(self, tmp_path):
        store = SweepStore(tmp_path)
        a = store.unit_key(base_spec(name="figA[cell=1]"), 0)
        b = store.unit_key(base_spec(name="figB[x=1,y=2]"), 0)
        assert canonical_key(a) == canonical_key(b)

    def test_unit_key_ignores_repeat_count(self, tmp_path):
        """Repeat r is determined by seed + r, not by how many repeats a
        sweep asked for — a 2-repeat and 3-repeat sweep share units."""
        store = SweepStore(tmp_path)
        a = store.unit_key(base_spec(repeats=2), 1)
        b = store.unit_key(base_spec(repeats=3), 1)
        assert canonical_key(a) == canonical_key(b)
        assert canonical_key(a) != canonical_key(
            store.unit_key(base_spec(repeats=3), 2)
        )

    def test_progress_stream(self, tmp_path):
        snapshots = []
        run_sweep_cached(
            small_grid().specs(),
            store=SweepStore(tmp_path),
            chunk_size=3,
            on_progress=snapshots.append,
        )
        # Initial cache-scan snapshot plus one per chunk (8 units / 3).
        assert [s.chunk for s in snapshots] == [0, 1, 2, 3]
        assert snapshots[0].completed == 0
        assert [s.completed for s in snapshots] == [0, 3, 6, 8]
        assert snapshots[-1].done

    def test_interrupted_sweep_resumes_byte_identical(self, tmp_path):
        grid = small_grid()
        uninterrupted = run_grid(grid)  # serial, storeless reference

        class Killed(RuntimeError):
            pass

        store = SweepStore(tmp_path)

        def die_after_first_chunk(progress):
            if progress.chunk >= 1:
                raise Killed()

        with pytest.raises(Killed):
            run_grid(
                grid, store=store, chunk_size=3,
                on_progress=die_after_first_chunk,
            )
        assert 0 < len(store) < 8  # partial progress persisted

        resumed = run_grid(grid, store=store, chunk_size=3)
        assert resumed.report.cache_hits == 3
        assert resumed.report.computed == 5
        assert grid_summary_json(resumed) == grid_summary_json(uninterrupted)
        assert [a.to_json() for a in resumed.artifacts] == [
            a.to_json() for a in uninterrupted.artifacts
        ]

    def test_grid_run_lookup(self):
        run = run_grid(small_grid())
        artifact = run.artifact(workload="600", alpha="0.5")
        assert artifact.spec.workload.params["rps"] == 600.0
        with pytest.raises(LookupError, match="2 cells"):
            run.artifact(workload="600")

    def test_bad_arguments(self):
        with pytest.raises(ValueError, match="parallel"):
            run_sweep_cached([base_spec()], parallel=0)
        with pytest.raises(ValueError, match="chunk_size"):
            run_sweep_cached([base_spec()], chunk_size=0)


class TestAggregate:
    @pytest.fixture(scope="class")
    def grid_run(self) -> GridRun:
        return run_grid(small_grid())

    def test_artifact_metrics(self, grid_run):
        metrics = artifact_metrics(grid_run.artifacts[0])
        assert set(metrics) == set(METRIC_NAMES)
        artifact = grid_run.artifacts[0]
        assert metrics["settled_total_mean"] == pytest.approx(
            artifact.mean_settled_total()
        )
        interval = artifact.spec.interval
        expected_cost = float(np.mean(
            [np.sum(r.total_cpu) * interval for r in artifact.results]
        ))
        assert metrics["cost_cpu_seconds_mean"] == pytest.approx(expected_cost)

    def test_grid_summary_shape(self, grid_run):
        summary = grid_summary(grid_run)
        assert summary["grid"] == "g"
        assert summary["axes"] == ["workload", "alpha"]
        assert len(summary["cells"]) == 4
        cell = summary["cells"][0]
        assert cell["coords"] == {"workload": "600", "alpha": "0.4"}
        assert set(cell["metrics"]) == set(METRIC_NAMES)

    def test_group_reduce_mean(self, grid_run):
        rows = group_reduce(grid_run, ["workload"],
                            metrics=["settled_total_mean"])
        assert [r["workload"] for r in rows] == ["600", "700"]
        assert all(r["cells"] == 2 for r in rows)
        per_cell = [
            artifact_metrics(a)["settled_total_mean"]
            for a in grid_run.artifacts[:2]
        ]
        assert rows[0]["settled_total_mean"] == pytest.approx(
            float(np.mean(per_cell))
        )

    def test_group_reduce_total(self, grid_run):
        rows = group_reduce(grid_run, ["alpha"], reduce="total",
                            metrics=["cost_cpu_seconds_mean"])
        grand_total = sum(r["cost_cpu_seconds_mean"] for r in rows)
        all_cells = sum(
            artifact_metrics(a)["cost_cpu_seconds_mean"]
            for a in grid_run.artifacts
        )
        assert grand_total == pytest.approx(all_cells)

    def test_group_reduce_errors(self, grid_run):
        with pytest.raises(KeyError, match="unknown axis"):
            group_reduce(grid_run, ["nope"])
        with pytest.raises(KeyError, match="unknown reducer"):
            group_reduce(grid_run, ["alpha"], reduce="median")

    def test_tables(self, grid_run):
        table = cells_table(grid_run)
        assert "workload" in table and "alpha" in table
        assert "settled_total_mean" in table
        by_alpha = axis_table(grid_run, "alpha")
        assert by_alpha.count("\n") == 4  # title + header + rule + 2 rows

    def test_zero_axis_table(self):
        run = run_grid(SweepGrid(name="one", base=base_spec()))
        table = cells_table(run)
        assert "cell" in table and "one" in table


class FakeBatch:
    """Stands in for OptimumBatch: cheap, counts solved cells."""

    calls = 0

    def __init__(self, engine, **_kw):
        self.engine = engine

    def find_many(self, requests):
        from repro.baselines import OptimumResult
        from repro.sim import Allocation

        results = []
        for req in requests:
            type(self).calls += 1
            results.append(
                OptimumResult(
                    allocation=Allocation({"svc": req.workload / 100.0}),
                    latency=0.1,
                    workload=req.workload,
                    evaluations=5,
                )
            )
        return results


@pytest.fixture
def fake_optimum(monkeypatch):
    FakeBatch.calls = 0
    monkeypatch.setattr(repro.baselines, "OptimumBatch", FakeBatch)
    clear_optimum_cache()
    yield FakeBatch
    clear_optimum_cache()


class TestOptimumCache:
    def test_memoizes_and_counts(self, fake_optimum):
        assert optimum_total("sockshop", 700.0) == 7.0
        assert optimum_total("sockshop", 700.0) == 7.0
        assert fake_optimum.calls == 1
        info = optimum_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1
        assert info["size"] == 1 and not info["store_active"]

    def test_bounded(self, fake_optimum, monkeypatch):
        monkeypatch.setattr(runner_mod, "OPTIMUM_CACHE_SIZE", 2)
        for wl in (100.0, 200.0, 300.0):
            optimum_total("sockshop", wl)
        assert optimum_cache_info()["size"] == 2
        optimum_total("sockshop", 100.0)  # evicted -> recomputed
        assert fake_optimum.calls == 4

    def test_clear_resets(self, fake_optimum):
        optimum_total("sockshop", 700.0)
        clear_optimum_cache()
        info = optimum_cache_info()
        assert info["size"] == 0 and info["hits"] == 0 and info["misses"] == 0
        optimum_total("sockshop", 700.0)
        assert fake_optimum.calls == 2

    def test_store_persists_across_processes(self, fake_optimum, tmp_path):
        store = SweepStore(tmp_path)
        with optimum_store(store):
            assert optimum_cache_info()["store_active"]
            assert optimum_total("sockshop", 700.0) == 7.0
        assert fake_optimum.calls == 1
        clear_optimum_cache()  # simulate a fresh process
        with optimum_store(SweepStore(tmp_path)):
            assert optimum_total("sockshop", 700.0) == 7.0
        assert fake_optimum.calls == 1  # served from disk, not recomputed
        assert not optimum_cache_info()["store_active"]

    def test_store_restored_on_error(self, fake_optimum, tmp_path):
        with pytest.raises(RuntimeError):
            with optimum_store(SweepStore(tmp_path)):
                raise RuntimeError("boom")
        assert not optimum_cache_info()["store_active"]


class TestSweepCli:
    @pytest.fixture
    def grid_file(self, tmp_path):
        path = tmp_path / "grid.json"
        small_grid(base=base_spec(repeats=1)).write(path)
        return path

    def test_cold_then_warm(self, grid_file, tmp_path, capsys):
        from repro.cli import main

        cache = tmp_path / "cache"
        out1, rep1 = tmp_path / "agg1.json", tmp_path / "rep1.json"
        out2, rep2 = tmp_path / "agg2.json", tmp_path / "rep2.json"
        argv = ["sweep", "--grid", str(grid_file), "--cache", str(cache),
                "--resume"]
        assert main(argv + ["--out", str(out1), "--report", str(rep1)]) == 0
        assert main(argv + ["--out", str(out2), "--report", str(rep2)]) == 0
        output = capsys.readouterr().out
        assert "4 cells, 4 units" in output
        cold = json.loads(rep1.read_text())
        warm = json.loads(rep2.read_text())
        assert cold["cache_hits"] == 0 and cold["computed"] == 4
        assert warm["cache_hits"] == warm["units"] == 4
        # The resumed aggregate is byte-identical to the cold one.
        assert out1.read_bytes() == out2.read_bytes()

    def test_resume_needs_cache(self, grid_file, capsys):
        from repro.cli import main

        assert main(["sweep", "--grid", str(grid_file), "--resume"]) == 2
        assert "--resume needs --cache" in capsys.readouterr().err

    def test_chunk_size_validated(self, grid_file, capsys):
        from repro.cli import main

        assert main(
            ["sweep", "--grid", str(grid_file), "--chunk-size", "0"]
        ) == 2
        assert "--chunk-size" in capsys.readouterr().err

    def test_bad_grid_file(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text('{"name": "x"}')
        assert main(["sweep", "--grid", str(bad)]) == 2
        assert "error" in capsys.readouterr().err


class TestGridValidation:
    """Unknown keys and misspelled axis paths fail at load, with hints."""

    def test_unknown_grid_field_suggests(self):
        with pytest.raises(ValueError, match=r"did you mean 'axes'"):
            SweepGrid.from_dict(
                {"name": "g", "base": base_spec().to_dict(), "axis": []}
            )

    def test_unknown_axis_field_suggests(self):
        with pytest.raises(ValueError, match=r"did you mean 'values'"):
            SweepAxis.from_dict({"name": "a", "value": [1]})

    def test_misspelled_root_path_suggests(self):
        with pytest.raises(ValueError, match=r"did you mean 'n_steps'"):
            SweepAxis(name="a", values=(1, 2), path="n_step")

    def test_misspelled_component_subfield_suggests(self):
        with pytest.raises(ValueError, match=r"did you mean 'params'"):
            SweepAxis(name="a", values=(1,), path="autoscaler.parms.alpha")

    def test_descent_into_scalar_field_rejected(self):
        with pytest.raises(ValueError, match="whole value"):
            SweepAxis(name="a", values=(1,), path="seed.offset")
        with pytest.raises(ValueError, match="scalar field"):
            SweepAxis(name="a", values=(1,), path="engine.seed_offset.x")

    def test_zipped_override_keys_validated(self):
        with pytest.raises(ValueError, match=r"did you mean 'workload'"):
            SweepAxis(name="a", values=({"worklod": 700.0},))

    def test_label_key_is_exempt(self):
        axis = SweepAxis(
            name="a", values=({"label": "x", "workload": 700.0},)
        )
        assert axis.label(0) == "x"

    def test_params_subpaths_pass_through(self):
        SweepAxis(name="a", values=(0.1,), path="autoscaler.params.alpha")
        SweepAxis(name="a", values=(0.1,), path="workload.params.rps")
        SweepAxis(name="a", values=(1,), path="engine.seed_offset")
        SweepAxis(
            name="a",
            values=(0.1,),
            path="workload.params.segments.nested.free",
        )

    def test_every_shipped_grid_passes(self):
        for path in sorted(Path("benchmarks/grids").glob("*.json")):
            SweepGrid.read(path)
