"""Query helpers over time series (PromQL-style reductions)."""

from __future__ import annotations

import numpy as np

from repro.metrics.series import TimeSeries

__all__ = [
    "percentile_over_window",
    "moving_average",
    "rate",
    "max_over_window",
]


def percentile_over_window(
    series: TimeSeries, start: float, end: float, q: float
) -> float:
    """q-th percentile (0-100) of samples within [start, end]."""
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100]: {q}")
    values = series.window(start, end)
    if values.size == 0:
        raise LookupError(f"no samples in window [{start}, {end}]")
    return float(np.percentile(values, q))


def max_over_window(series: TimeSeries, start: float, end: float) -> float:
    values = series.window(start, end)
    if values.size == 0:
        raise LookupError(f"no samples in window [{start}, {end}]")
    return float(values.max())


def moving_average(series: TimeSeries, count: int) -> float:
    """Mean of the most recent ``count`` samples (fewer if short).

    This is the K-sample moving average the paper applies to the response
    time in Eqns. (10)-(11).
    """
    values = series.tail(count)
    if values.size == 0:
        raise LookupError("empty series")
    return float(values.mean())


def rate(series: TimeSeries, start: float, end: float) -> float:
    """Per-second increase of a counter over a window (Prometheus rate())."""
    times, values = series.window_pairs(start, end)
    if times.size < 2:
        raise LookupError("rate() needs at least two samples in the window")
    dt = times[-1] - times[0]
    if dt <= 0:
        raise LookupError("rate() window has zero duration")
    return float((values[-1] - values[0]) / dt)
