"""Cost-aware resource objective — the paper's §3 generalization.

"Instead of minimizing the total resource allocation, ORA can also adopt
cost minimization as its goal by replacing x_i in Eqn. (1) with C(x_i)."

:class:`CostModel` prices each service's CPU (heterogeneous node pools,
spot vs on-demand, licensed databases, ...).  PEMA becomes cost-aware by
tilting the Eqn. (5) inclusion probabilities toward expensive services, so
reduction effort concentrates where each core saved is worth most; the
feedback loop and QoS machinery are untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.sim.types import Allocation

__all__ = ["CostModel", "cost_weighted_probabilities"]


@dataclass(frozen=True)
class CostModel:
    """Per-service CPU prices (arbitrary currency per core-interval)."""

    prices: Mapping[str, float]

    def __post_init__(self) -> None:
        if not self.prices:
            raise ValueError("need at least one price")
        for name, price in self.prices.items():
            if price <= 0:
                raise ValueError(f"{name}: price must be positive")

    @classmethod
    def uniform(cls, services: Iterable[str], price: float = 1.0) -> "CostModel":
        """Uniform pricing — cost minimization degenerates to Eqn. (1)."""
        return cls({name: price for name in services})

    def price(self, service: str) -> float:
        return self.prices[service]

    def cost(self, allocation: Allocation) -> float:
        """C(x) = sum_i price_i * x_i."""
        missing = set(allocation) - set(self.prices)
        if missing:
            raise KeyError(f"no price for services: {sorted(missing)}")
        return sum(self.prices[name] * allocation[name] for name in allocation)


def cost_weighted_probabilities(
    probabilities: dict[str, float],
    cost_model: CostModel,
    strength: float = 0.75,
) -> dict[str, float]:
    """Tilt Eqn. (5) inclusion probabilities toward expensive services.

    Each probability is scaled by ``(1 - strength) + strength * w_i`` where
    ``w_i`` is the service's price normalized by the maximum price, so the
    cheapest services keep a floor of ``1 - strength`` of their original
    probability and the priciest keep all of it.
    """
    if not 0.0 <= strength <= 1.0:
        raise ValueError(f"strength must be in [0, 1]: {strength}")
    if not probabilities:
        return {}
    max_price = max(cost_model.price(name) for name in probabilities)
    out = {}
    for name, p in probabilities.items():
        weight = cost_model.price(name) / max_price
        out[name] = p * ((1.0 - strength) + strength * weight)
    return out
