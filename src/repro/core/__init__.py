"""PEMA core: the paper's contribution (Algorithm 1 + workload awareness)."""

from repro.core.batch import PEMABatch
from repro.core.config import PEMAConfig
from repro.core.controller import PEMAController, StepAction, StepResult
from repro.core.cost import CostModel, cost_weighted_probabilities
from repro.core.exploration import exploration_probability
from repro.core.fastloop import FastLoopResult, FastReactionLoop
from repro.core.loop import Autoscaler, ControlLoop, LoopRecord, LoopResult
from repro.core.manager import ManagerStep, WorkloadAwarePEMA
from repro.core.reduction import num_targets, reduction_fraction, reduction_signal
from repro.core.rhdb import ResourceHistoryDB, RHDbRecord
from repro.core.selection import (
    eligible_services,
    inclusion_probabilities,
    select_targets,
)
from repro.core.target import DynamicTarget, learn_slope
from repro.core.thresholds import ThresholdTracker
from repro.core.workload_range import RangeTree, SplitEvent, WorkloadRange

__all__ = [
    "PEMAConfig",
    "PEMAController",
    "PEMABatch",
    "StepAction",
    "StepResult",
    "WorkloadAwarePEMA",
    "ManagerStep",
    "ControlLoop",
    "Autoscaler",
    "LoopRecord",
    "LoopResult",
    "FastReactionLoop",
    "FastLoopResult",
    "CostModel",
    "cost_weighted_probabilities",
    "ResourceHistoryDB",
    "RHDbRecord",
    "ThresholdTracker",
    "RangeTree",
    "WorkloadRange",
    "SplitEvent",
    "DynamicTarget",
    "learn_slope",
    "reduction_signal",
    "num_targets",
    "reduction_fraction",
    "exploration_probability",
    "eligible_services",
    "inclusion_probabilities",
    "select_targets",
]
