"""Workload trace protocol and composition helpers.

A workload trace maps wall-clock time (seconds) to offered load (requests
per second).  Traces are deterministic given their construction arguments;
stochastic jitter is layered on with :class:`NoisyTrace` and an explicit
seed, so experiments replay exactly.

Traces may additionally implement ``rate_batch(times) -> np.ndarray``, the
vectorized form of ``rate``: one call evaluates a whole time grid.  The
contract is *bit-exactness* — ``rate_batch(times)[i]`` must be the same
IEEE float64 as ``rate(times[i])`` — so the batched sweep engine can
pre-evaluate a replay trace for its full horizon without perturbing the
byte-identity guarantee against the scalar path.  :func:`batch_rates`
dispatches to ``rate_batch`` when present and falls back to the per-``t``
scalar loop (trivially bit-exact) otherwise.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

__all__ = [
    "WorkloadTrace",
    "NoisyTrace",
    "ScaledTrace",
    "PhasedTrace",
    "batch_rates",
    "sample_range",
]


@runtime_checkable
class WorkloadTrace(Protocol):
    """Offered load as a function of time."""

    def rate(self, t: float) -> float:
        """Requests per second at time ``t`` (seconds)."""
        ...


def batch_rates(trace: WorkloadTrace, times: np.ndarray) -> np.ndarray:
    """``trace``'s rate at every time in ``times``, as a float64 array.

    Uses the trace's vectorized ``rate_batch`` when it has one; otherwise
    evaluates ``rate`` per element.  Either way the result is bit-identical
    to the scalar calls (the ``rate_batch`` contract above).
    """
    times = np.asarray(times, dtype=np.float64)
    rate_batch = getattr(trace, "rate_batch", None)
    if rate_batch is not None:
        return np.asarray(rate_batch(times), dtype=np.float64)
    return np.asarray([trace.rate(float(t)) for t in times], dtype=np.float64)


class NoisyTrace:
    """Multiplicative jitter around a base trace.

    The jitter is a deterministic function of ``floor(t / period)`` and the
    seed, so repeated queries at the same time return the same rate.
    """

    def __init__(
        self, base: WorkloadTrace, sigma: float = 0.03, seed: int = 0, period: float = 60.0
    ) -> None:
        if sigma < 0:
            raise ValueError("sigma must be >= 0")
        if period <= 0:
            raise ValueError("period must be > 0")
        self.base = base
        self.sigma = sigma
        self.seed = seed
        self.period = period

    def rate(self, t: float) -> float:
        base = self.base.rate(t)
        if self.sigma == 0:
            return base
        bucket = int(np.floor(t / self.period))
        rng = np.random.default_rng((self.seed, bucket))
        return max(0.0, base * float(np.exp(rng.normal(0.0, self.sigma))))

    def rate_batch(self, times: np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=np.float64)
        base = batch_rates(self.base, times)
        if self.sigma == 0:
            return base
        # The jitter factor is a pure function of (seed, bucket), so one
        # draw per *unique* bucket reproduces every scalar call exactly.
        buckets = np.floor(times / self.period).astype(np.int64)
        factors = np.empty_like(base)
        for bucket in np.unique(buckets):
            rng = np.random.default_rng((self.seed, int(bucket)))
            factors[buckets == bucket] = np.exp(rng.normal(0.0, self.sigma))
        return np.maximum(0.0, base * factors)


class PhasedTrace:
    """Sequential phases, each with its own trace and a restarted clock.

    ``phases`` is a list of ``(trace, duration)`` pairs; the last phase
    may have ``duration=None`` (open-ended).  Each phase's trace is
    queried with time measured from its own start, so a multi-stage
    scenario (train on a sinusoid, then replay a burst) reproduces the
    exact per-phase rates of running the phases as separate loops.
    """

    def __init__(
        self, phases: list[tuple[WorkloadTrace, float | None]]
    ) -> None:
        if not phases:
            raise ValueError("need at least one phase")
        for i, (_trace, duration) in enumerate(phases):
            if duration is None:
                if i != len(phases) - 1:
                    raise ValueError(
                        "only the last phase may be open-ended"
                    )
            elif duration <= 0:
                raise ValueError("phase durations must be positive")
        self.phases = list(phases)

    def rate(self, t: float) -> float:
        start = 0.0
        for trace, duration in self.phases:
            if duration is None or t < start + duration:
                return trace.rate(t - start)
            start += duration
        # Past the end of a fully-bounded schedule: the last phase holds,
        # clocked from its own start.
        return self.phases[-1][0].rate(t - (start - self.phases[-1][1]))

    def rate_batch(self, times: np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=np.float64)
        out = np.empty_like(times)
        remaining = np.ones(times.shape, dtype=bool)
        start = 0.0
        for trace, duration in self.phases:
            mask = (
                remaining
                if duration is None
                else remaining & (times < start + duration)
            )
            if mask.any():
                out[mask] = batch_rates(trace, times[mask] - start)
            remaining &= ~mask
            if duration is not None:
                start += duration
        if remaining.any():  # past the end of a fully-bounded schedule
            last_trace, last_duration = self.phases[-1]
            out[remaining] = batch_rates(
                last_trace, times[remaining] - (start - last_duration)
            )
        return out


class ScaledTrace:
    """Affine transform of a base trace: ``rate = base * scale + offset``."""

    def __init__(
        self, base: WorkloadTrace, scale: float = 1.0, offset: float = 0.0
    ) -> None:
        self.base = base
        self.scale = scale
        self.offset = offset

    def rate(self, t: float) -> float:
        return max(0.0, self.base.rate(t) * self.scale + self.offset)

    def rate_batch(self, times: np.ndarray) -> np.ndarray:
        base = batch_rates(self.base, np.asarray(times, dtype=np.float64))
        return np.maximum(0.0, base * self.scale + self.offset)


def sample_range(
    trace: WorkloadTrace, start: float, end: float, step: float
) -> tuple[np.ndarray, np.ndarray]:
    """Sample a trace on a regular grid — convenient for plots and tests."""
    if end <= start:
        raise ValueError("end must be after start")
    if step <= 0:
        raise ValueError("step must be positive")
    times = np.arange(start, end, step, dtype=np.float64)
    rates = np.asarray([trace.rate(float(t)) for t in times])
    return times, rates
