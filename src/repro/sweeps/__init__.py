"""Resumable, content-addressed sweep orchestration.

Every benchmark figure is really a parameter grid — workload level, α/β,
CPU speed, SLO, seeds — and this package turns such a grid into a spec
file plus an incremental execution pipeline:

* :class:`SweepGrid` (:mod:`repro.sweeps.grid`) — a frozen,
  JSON-round-tripping grid: cartesian axes (one dotted field path over
  scalar values) and zipped axes (override mappings that move several
  fields together) expanded over a base
  :class:`~repro.experiments.ExperimentSpec`;
* :class:`SweepStore` (:mod:`repro.sweeps.store`) — a content-addressed
  on-disk cache keyed by the hash of each (spec, repeat), with atomic
  writes and corruption-tolerant loads, shared by every grid that sweeps
  overlapping points;
* :func:`run_sweep_cached` / :func:`run_grid`
  (:mod:`repro.sweeps.scheduler`) — chunked process-parallel scheduling
  with per-chunk persistence and progress callbacks, so an interrupted
  sweep resumes with zero recomputation; ``batch=True`` evaluates
  compatible cell groups as vectorized NumPy batches
  (:mod:`repro.sweeps.batched`), byte-identical to the scalar path;
* :mod:`repro.sweeps.aggregate` — grouped reductions (mean/p95/cost over
  seeds, per-axis tables) and a byte-stable aggregate JSON;
* :func:`run_worker` / :func:`run_distributed` / :func:`wait_for_grid`
  (:mod:`repro.sweeps.distributed`) — lease/claim workers pulling task
  chunks from one shared store directory (``repro sweep --worker``),
  healing from worker death via stale-lease reclamation, with the merged
  run byte-identical to a serial one.

Quickstart::

    from repro.sweeps import SweepGrid, SweepStore, run_grid, grid_summary

    grid = SweepGrid.read("benchmarks/grids/fig16_alpha_sensitivity.json")
    run = run_grid(grid, store=SweepStore(".sweep-cache"), parallel=4)
    print(grid_summary(run)["cells"][0]["metrics"])

The CLI equivalent is ``python -m repro sweep --grid <file> --cache
<dir> --resume``.
"""

from repro.sweeps.aggregate import (
    METRIC_NAMES,
    artifact_metrics,
    axis_table,
    cells_table,
    grid_summary,
    grid_summary_json,
    group_reduce,
)
from repro.sweeps.batched import (
    BATCHABLE_AUTOSCALERS,
    batch_fallback_reason,
    batch_from_env,
    batch_key,
    classify_unit,
    run_units_batched,
)
from repro.sweeps.distributed import (
    DEFAULT_LEASE_TTL,
    DistPlan,
    DistTask,
    WorkerReport,
    merge_grid,
    missing_units,
    plan_tasks,
    run_distributed,
    run_worker,
    wait_for_grid,
    worker_reports,
)
from repro.sweeps.grid import (
    SweepAxis,
    SweepCell,
    SweepGrid,
    set_path,
    validate_override_path,
)
from repro.sweeps.scheduler import (
    GridRun,
    SweepProgress,
    SweepReport,
    build_artifacts,
    run_grid,
    run_sweep_cached,
)
from repro.sweeps.store import (
    JsonDirectoryStore,
    Lease,
    LeaseNamespace,
    StoreStats,
    SweepStore,
    canonical_key,
)

__all__ = [
    "SweepGrid",
    "SweepAxis",
    "SweepCell",
    "set_path",
    "validate_override_path",
    "SweepStore",
    "JsonDirectoryStore",
    "Lease",
    "LeaseNamespace",
    "StoreStats",
    "canonical_key",
    "run_sweep_cached",
    "run_grid",
    "build_artifacts",
    "GridRun",
    "DEFAULT_LEASE_TTL",
    "DistPlan",
    "DistTask",
    "WorkerReport",
    "plan_tasks",
    "run_worker",
    "missing_units",
    "merge_grid",
    "wait_for_grid",
    "run_distributed",
    "worker_reports",
    "BATCHABLE_AUTOSCALERS",
    "batch_from_env",
    "batch_key",
    "batch_fallback_reason",
    "classify_unit",
    "run_units_batched",
    "SweepProgress",
    "SweepReport",
    "artifact_metrics",
    "METRIC_NAMES",
    "grid_summary",
    "grid_summary_json",
    "group_reduce",
    "cells_table",
    "axis_table",
]
