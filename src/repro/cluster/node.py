"""Worker-node model.

The paper's testbed: five nodes (one master, four workers), each with two
10-core Xeons and 128 GB RAM.  Only worker nodes host application pods.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Node", "paper_testbed_nodes"]


@dataclass
class Node:
    """One schedulable node with CPU/memory capacity."""

    name: str
    cpu_capacity: float
    memory_mb: float
    pods: list["object"] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.cpu_capacity <= 0 or self.memory_mb <= 0:
            raise ValueError(f"{self.name}: capacities must be positive")

    @property
    def cpu_used(self) -> float:
        return sum(p.cpu_request for p in self.pods)

    @property
    def memory_used(self) -> float:
        return sum(p.memory_mb for p in self.pods)

    @property
    def cpu_free(self) -> float:
        return self.cpu_capacity - self.cpu_used

    @property
    def memory_free(self) -> float:
        return self.memory_mb - self.memory_used

    def fits(self, cpu_request: float, memory_mb: float) -> bool:
        return self.cpu_free >= cpu_request - 1e-9 and (
            self.memory_free >= memory_mb - 1e-9
        )

    def utilization(self) -> float:
        return self.cpu_used / self.cpu_capacity


def paper_testbed_nodes() -> list[Node]:
    """The four worker nodes of the paper's cluster (2x10-core Xeon, 128 GB)."""
    return [
        Node(name=f"worker-{i}", cpu_capacity=20.0, memory_mb=128 * 1024.0)
        for i in range(1, 5)
    ]
