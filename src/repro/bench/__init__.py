"""Benchmark harness: experiment drivers and report formatting."""

from repro.bench.parallel import (
    default_workers,
    parallel_pema_totals,
    run_parallel,
)
from repro.bench.runner import (
    PEMARun,
    average_pema_total,
    clear_caches,
    optimum_total,
    pema_run,
    rule_total,
)
from repro.bench.tables import format_kv, format_series, format_table

__all__ = [
    "run_parallel",
    "parallel_pema_totals",
    "default_workers",
    "pema_run",
    "PEMARun",
    "optimum_total",
    "rule_total",
    "average_pema_total",
    "clear_caches",
    "format_table",
    "format_series",
    "format_kv",
]
