"""Bottleneck-avoiding candidate selection — Eqn. (5) and Alg. 1 lines 8-10.

Three stages per control step:

1. **Throttle filter** (Alg. 1 line 8): only services whose CPU throttling
   time is within their learned threshold are eligible —
   ``I_t = {i : h_i <= H_th_i}``.
2. **Utilization-guided inclusion** (Eqn. 5 / line 9): each eligible
   service enters the candidate set ``I*_t`` with probability

       p_i = 1 - (u*_i - min(u*)) / (1 - min(u*)),   u*_i = u_i / U_th_i

   so the coolest service is included with probability 1 and a service at
   its threshold with probability 0.  In the degenerate case where every
   eligible service sits at its threshold, all tie as the coolest and
   each keeps probability 1 (the limit of the formula).
3. **Uniform cut** (line 10): if more than ``n_t`` candidates were
   included, pick ``n_t`` uniformly at random; otherwise take them all.
"""

from __future__ import annotations

import numpy as np

from repro.core.thresholds import ThresholdTracker
from repro.sim.types import IntervalMetrics

__all__ = ["eligible_services", "inclusion_probabilities", "select_targets"]

_EPS = 1e-9


def eligible_services(
    metrics: IntervalMetrics, thresholds: ThresholdTracker
) -> tuple[str, ...]:
    """I_t: services whose throttling time is within their threshold."""
    return tuple(
        name
        for name, svc in metrics.services.items()
        if svc.throttle_seconds <= thresholds.throttle_threshold(name) + _EPS
    )


def inclusion_probabilities(
    metrics: IntervalMetrics,
    thresholds: ThresholdTracker,
    eligible: tuple[str, ...],
) -> dict[str, float]:
    """Eqn. (5): inclusion probability per eligible service.

    Normalized utilizations ``u*`` are guaranteed <= 1 because the
    thresholds were ratcheted (Eqn. 6) before selection.  The coolest
    eligible service always has probability 1 — including the degenerate
    case where every service sits exactly at its threshold (``u* = 1``
    for all), which makes Eqn. (5) a 0/0.  There every service ties as
    the coolest, so each one keeps probability 1, matching the limit of
    the formula as the utilizations approach each other.
    """
    if not eligible:
        return {}
    u_star = {}
    for name in eligible:
        u_th = thresholds.util_threshold(name)
        u = metrics.services[name].utilization
        u_star[name] = min(u / max(u_th, _EPS), 1.0)
    u_min = min(u_star.values())
    denom = 1.0 - u_min
    if denom <= _EPS:
        # Zero range: everyone ties as the coolest service.
        return {name: 1.0 for name in eligible}
    return {
        name: float(np.clip(1.0 - (u_star[name] - u_min) / denom, 0.0, 1.0))
        for name in eligible
    }


def select_targets(
    probabilities: dict[str, float],
    n_targets: int,
    rng: np.random.Generator,
) -> tuple[str, ...]:
    """Build I*_t by Bernoulli inclusion, then cut uniformly to n_t."""
    if n_targets < 0:
        raise ValueError("n_targets must be >= 0")
    if n_targets == 0 or not probabilities:
        return ()
    names = list(probabilities)
    draws = rng.random(len(names))
    included = [n for n, d in zip(names, draws) if d < probabilities[n]]
    if len(included) <= n_targets:
        return tuple(included)
    picked = rng.choice(len(included), size=n_targets, replace=False)
    return tuple(included[i] for i in sorted(picked))
