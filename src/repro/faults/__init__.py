"""Deterministic fault injection: a registry-extensible disturbance vocabulary.

The robustness experiments (``benchmarks/grids/robustness_*.json``) stress
every controller with the disturbances the paper's QoS-assurance claim
must survive.  Each disturbance is *declarative* (plain JSON in a spec's
``hooks`` or ``workload``) and *deterministic*: the schedule is a pure
function of the spec, so scalar, ``--batch``, and streamed-service
execution reproduce the same faults — and therefore the same bytes.

Three fault families:

**Engine faults** (:data:`ENGINE_FAULT_KINDS`) perturb the performance
model through dedicated engine channels — ``service_crash`` collapses one
service's effective capacity for a window, ``calibration_drift``
compounds a per-step error onto the calibrated CPU demands,
``correlated_surge`` shifts several services' demands at once.  They ship
as ordinary ``HOOKS`` entries; :func:`fault_actions` is the *single*
schedule implementation both the scalar hook closures and the batched
sweep runner consume, so the floats they set are identical by
construction.

**Workload faults** reshape the offered load: ``flash_crowd`` wraps any
base trace in a multiplicative spike with a linear ramp, hold, and decay
(:class:`FlashCrowdTrace`, a ``WORKLOADS`` kind with a bit-exact
``rate_batch``).

**Stream faults** (:data:`STREAM_FAULT_KINDS`) disturb the *delivery* of
metric samples to the always-on control plane — a sample is dropped and
retransmitted, duplicated, or delayed by whole driver rounds.  Offline
they are no-ops (the control loop has no transport to disturb); the
service orchestrator reads them from the spec and perturbs its delivery
schedule, while the guardian's reorder window puts the samples back in
order — so the *processed* sequence, and the decision bytes, stay
identical.

The :data:`FAULTS` registry catalogues every disturbance with a one-line
description (``repro registry --kind faults``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

from repro.experiments.registry import WORKLOADS, Registry
from repro.workload.trace import WorkloadTrace, batch_rates

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.spec import ExperimentSpec

__all__ = [
    "FAULTS",
    "ENGINE_FAULT_KINDS",
    "STREAM_FAULT_KINDS",
    "FaultAction",
    "fault_actions",
    "apply_fault_actions",
    "normalize_fault_params",
    "engine_fault_hook",
    "stream_fault_hook",
    "FlashCrowdTrace",
    "stream_fault_entries",
    "reorder_window_for",
    "stream_delivery",
]

#: Disturbance catalogue for ``repro registry --kind faults``.
FAULTS = Registry("fault scenario")

#: Hook kinds that perturb the engine's fault channels.
ENGINE_FAULT_KINDS = ("service_crash", "calibration_drift", "correlated_surge")

#: Hook kinds that perturb metric-sample delivery (service layer only).
STREAM_FAULT_KINDS = ("metric_dropout", "metric_duplicate", "metric_delay")


# -- parameter normalization ----------------------------------------------------
def _normalize_service_crash(*, at, duration, service, residual=0.05):
    at, duration = int(at), int(duration)
    if at < 0:
        raise ValueError(f"service_crash 'at' must be >= 0: {at}")
    if duration < 1:
        raise ValueError(f"service_crash 'duration' must be >= 1: {duration}")
    if not isinstance(service, str) or not service:
        raise TypeError(f"service_crash 'service' must be a name: {service!r}")
    residual = float(residual)
    if residual < 0:
        raise ValueError(f"service_crash 'residual' must be >= 0: {residual}")
    return {"at": at, "duration": duration, "service": service,
            "residual": residual}


def _normalize_calibration_drift(*, rate, at=0, service=None, every=1,
                                 until=None):
    rate = float(rate)
    if rate <= -1.0:
        raise ValueError(f"calibration_drift 'rate' must be > -1: {rate}")
    at, every = int(at), int(every)
    if at < 0:
        raise ValueError(f"calibration_drift 'at' must be >= 0: {at}")
    if every < 1:
        raise ValueError(f"calibration_drift 'every' must be >= 1: {every}")
    if service is not None and (not isinstance(service, str) or not service):
        raise TypeError(
            f"calibration_drift 'service' must be a name or null: {service!r}"
        )
    if until is not None:
        until = int(until)
        if until <= at:
            raise ValueError(
                f"calibration_drift 'until' must be > 'at': {until} <= {at}"
            )
    return {"rate": rate, "at": at, "service": service, "every": every,
            "until": until}


def _normalize_correlated_surge(*, services, factor, at, duration):
    if isinstance(services, str) or not isinstance(services, Sequence):
        raise TypeError(
            f"correlated_surge 'services' must be a list of names: {services!r}"
        )
    names = tuple(str(s) for s in services)
    if not names:
        raise ValueError("correlated_surge 'services' must be non-empty")
    factor = float(factor)
    if factor <= 0:
        raise ValueError(f"correlated_surge 'factor' must be positive: {factor}")
    at, duration = int(at), int(duration)
    if at < 0:
        raise ValueError(f"correlated_surge 'at' must be >= 0: {at}")
    if duration < 1:
        raise ValueError(
            f"correlated_surge 'duration' must be >= 1: {duration}"
        )
    return {"services": names, "factor": factor, "at": at,
            "duration": duration}


def _normalize_metric_dropout(*, at):
    at = int(at)
    if at < 0:
        raise ValueError(f"metric_dropout 'at' must be >= 0: {at}")
    return {"at": at}


def _normalize_metric_duplicate(*, at):
    at = int(at)
    if at < 0:
        raise ValueError(f"metric_duplicate 'at' must be >= 0: {at}")
    return {"at": at}


def _normalize_metric_delay(*, at, rounds=1):
    at, rounds = int(at), int(rounds)
    if at < 0:
        raise ValueError(f"metric_delay 'at' must be >= 0: {at}")
    if rounds < 1:
        raise ValueError(f"metric_delay 'rounds' must be >= 1: {rounds}")
    return {"at": at, "rounds": rounds}


_NORMALIZERS: dict[str, Callable[..., dict[str, Any]]] = {
    "service_crash": _normalize_service_crash,
    "calibration_drift": _normalize_calibration_drift,
    "correlated_surge": _normalize_correlated_surge,
    "metric_dropout": _normalize_metric_dropout,
    "metric_duplicate": _normalize_metric_duplicate,
    "metric_delay": _normalize_metric_delay,
}


def normalize_fault_params(kind: str, params: dict[str, Any]) -> dict[str, Any]:
    """Validated, default-filled parameters for one fault hook.

    Raises ``TypeError``/``ValueError`` on unknown keys or bad values —
    the same eager validation every registry factory performs, so a typo
    in a grid file fails at build time in *every* execution mode.
    """
    try:
        normalize = _NORMALIZERS[kind]
    except KeyError:
        known = ", ".join(sorted(_NORMALIZERS))
        raise KeyError(f"unknown fault kind {kind!r} (known: {known})") from None
    return normalize(**params)


# -- the shared fault schedule ---------------------------------------------------
@dataclass(frozen=True)
class FaultAction:
    """One engine-channel assignment: set ``channel`` of ``service`` to ``value``.

    ``channel`` is ``"capacity"`` (effective-capacity scale) or
    ``"demand"`` (CPU-demand scale); ``service`` is ``None`` for
    app-wide assignments.  Values are always *absolute* scales relative
    to the calibrated model — never accumulated — so replaying the
    schedule from any step reproduces the same state.
    """

    channel: str
    service: str | None
    value: float


def fault_actions(
    kind: str, params: dict[str, Any], step: int
) -> list[FaultAction]:
    """The engine-channel assignments fault ``kind`` makes at ``step``.

    This is the *single* schedule implementation: the scalar hook
    closures and the batched sweep runner both call it, so the float each
    path writes into its engine is the same IEEE value by construction.
    ``params`` must be :func:`normalize_fault_params` output.
    """
    if kind == "service_crash":
        if step == params["at"]:
            return [FaultAction("capacity", params["service"],
                                params["residual"])]
        if step == params["at"] + params["duration"]:
            return [FaultAction("capacity", params["service"], 1.0)]
        return []
    if kind == "calibration_drift":
        at, until, every = params["at"], params["until"], params["every"]
        if step < at or (until is not None and step >= until):
            return []
        if (step - at) % every:
            return []
        # Absolute compound drift: (1 + rate)^(k+1) at the k-th tick, so
        # the channel state is a pure function of the step.
        k = (step - at) // every
        value = (1.0 + params["rate"]) ** (k + 1)
        return [FaultAction("demand", params["service"], value)]
    if kind == "correlated_surge":
        if step == params["at"]:
            return [FaultAction("demand", name, params["factor"])
                    for name in params["services"]]
        if step == params["at"] + params["duration"]:
            return [FaultAction("demand", name, 1.0)
                    for name in params["services"]]
        return []
    raise KeyError(f"not an engine fault kind: {kind!r}")


_CHANNEL_SETTERS = {"capacity": "set_capacity_scale", "demand": "set_demand_scale"}


def apply_fault_actions(environment: Any, actions: list[FaultAction]) -> None:
    """Apply schedule actions to a scalar engine's fault channels."""
    for action in actions:
        setter = getattr(environment, _CHANNEL_SETTERS[action.channel], None)
        if setter is None:
            raise ValueError(
                f"engine {type(environment).__name__} has no fault channel "
                f"{action.channel!r} (fault hooks need the analytical engine)"
            )
        setter(action.value, service=action.service)


def engine_fault_hook(
    kind: str, params: dict[str, Any]
) -> Callable[[int, Any], None]:
    """An ``on_step`` hook applying ``kind``'s schedule to the scalar engine."""
    normalized = normalize_fault_params(kind, params)

    def hook(step, loop):
        actions = fault_actions(kind, normalized, step)
        if actions:
            apply_fault_actions(loop.environment, actions)

    return hook


def stream_fault_hook(
    kind: str, params: dict[str, Any]
) -> Callable[[int, Any], None]:
    """An ``on_step`` hook for a delivery fault: offline it is a no-op.

    Offline runs have no metric transport to disturb, and the service
    layer's reorder/dedup machinery restores the exact processed
    sequence — a deliberate no-op keeps all three execution modes
    byte-identical.  The orchestrator reads the same spec hooks to build
    its perturbed delivery schedule (:func:`stream_delivery`).
    """
    normalize_fault_params(kind, params)

    def hook(step, loop):  # noqa: ARG001 - deliberate no-op (see docstring)
        return None

    return hook


# -- stream-fault delivery planning ---------------------------------------------
def stream_fault_entries(spec: "ExperimentSpec") -> list[tuple[str, dict]]:
    """The spec's delivery faults as ``(kind, normalized_params)`` pairs."""
    return [
        (hook.kind, normalize_fault_params(hook.kind, dict(hook.params)))
        for hook in spec.hooks
        if hook.kind in STREAM_FAULT_KINDS
    ]


def reorder_window_for(spec: "ExperimentSpec") -> int:
    """The guardian reorder window the spec's delivery faults require.

    A sample delayed by ``d`` driver rounds arrives after ``d`` future
    samples, so the guardian must buffer that many.  Clean specs return
    0 — the strict legacy protocol (any out-of-order tick poisons).
    """
    window = 0
    for kind, params in stream_fault_entries(spec):
        if kind == "metric_delay":
            window = max(window, params["rounds"])
        elif kind == "metric_dropout":
            window = max(window, 1)
    return window


def stream_delivery(
    entries: list[tuple[str, dict]], step: int
) -> tuple[int, int]:
    """How the delivery faults affect the sample for ``step``.

    Returns ``(delay_rounds, copies)``: the sample is delivered
    ``delay_rounds`` driver rounds late (dropout counts as a one-round
    retransmission), ``copies`` times.  Multiple faults on the same step
    compose.
    """
    delay, copies = 0, 1
    for kind, params in entries:
        if params["at"] != step:
            continue
        if kind == "metric_delay":
            delay += params["rounds"]
        elif kind == "metric_dropout":
            delay += 1
        elif kind == "metric_duplicate":
            copies += 1
    return delay, copies


# -- workload fault: flash crowd -------------------------------------------------
class FlashCrowdTrace:
    """A multiplicative rate spike with linear ramp, hold, and decay.

    Wraps any base trace: the envelope is 1.0 before ``at``, ramps
    linearly to ``factor`` over ``ramp`` seconds, holds for ``hold``
    seconds, decays linearly back over ``decay`` seconds, and is 1.0
    after.  ``rate_batch`` evaluates the same per-element expressions the
    scalar ``rate`` uses, so batched schedules are bit-identical.
    """

    def __init__(
        self,
        base: WorkloadTrace,
        *,
        at: float,
        ramp: float,
        factor: float,
        hold: float = 0.0,
        decay: float | None = None,
    ) -> None:
        if at < 0:
            raise ValueError(f"'at' must be >= 0: {at}")
        if ramp <= 0:
            raise ValueError(f"'ramp' must be positive: {ramp}")
        if hold < 0:
            raise ValueError(f"'hold' must be >= 0: {hold}")
        if factor <= 0:
            raise ValueError(f"'factor' must be positive: {factor}")
        decay = ramp if decay is None else decay
        if decay <= 0:
            raise ValueError(f"'decay' must be positive: {decay}")
        self.base = base
        self.at = float(at)
        self.ramp = float(ramp)
        self.factor = float(factor)
        self.hold = float(hold)
        self.decay = float(decay)

    def envelope(self, t: float) -> float:
        """The spike multiplier at time ``t`` (seconds)."""
        t = float(t)
        peak_start = self.at + self.ramp
        peak_end = peak_start + self.hold
        if t < self.at or t >= peak_end + self.decay:
            return 1.0
        if t < peak_start:
            return 1.0 + (self.factor - 1.0) * ((t - self.at) / self.ramp)
        if t < peak_end:
            return self.factor
        return self.factor + (1.0 - self.factor) * ((t - peak_end) / self.decay)

    def rate(self, t: float) -> float:
        return self.base.rate(t) * self.envelope(t)

    def rate_batch(self, times: np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=np.float64)
        peak_start = self.at + self.ramp
        peak_end = peak_start + self.hold
        # The same branch expressions as ``envelope``, elementwise; each
        # element selects exactly the branch the scalar walk would take.
        rising = 1.0 + (self.factor - 1.0) * ((times - self.at) / self.ramp)
        falling = self.factor + (1.0 - self.factor) * (
            (times - peak_end) / self.decay
        )
        env = np.select(
            [
                (times >= self.at) & (times < peak_start),
                (times >= peak_start) & (times < peak_end),
                (times >= peak_end) & (times < peak_end + self.decay),
            ],
            [rising, np.full_like(times, self.factor), falling],
            default=1.0,
        )
        return batch_rates(self.base, times) * env


# -- catalogue ------------------------------------------------------------------
@FAULTS.register("service_crash")
def _service_crash_fault(**params):
    """Hook: one service's capacity collapses to a residual for a window, then recovers."""
    return engine_fault_hook("service_crash", params)


@FAULTS.register("calibration_drift")
def _calibration_drift_fault(**params):
    """Hook: per-service CPU demands drift by a compounding rate over time."""
    return engine_fault_hook("calibration_drift", params)


@FAULTS.register("correlated_surge")
def _correlated_surge_fault(**params):
    """Hook: several services' demands shift simultaneously for a window."""
    return engine_fault_hook("correlated_surge", params)


@FAULTS.register("flash_crowd")
def _flash_crowd_fault(**params):
    """Workload: multiplicative rate spike with linear ramp/hold/decay over a base trace."""
    return WORKLOADS.build("flash_crowd", **params)


@FAULTS.register("metric_dropout")
def _metric_dropout_fault(**params):
    """Stream: one metric sample is dropped and retransmitted a round later."""
    return stream_fault_hook("metric_dropout", params)


@FAULTS.register("metric_duplicate")
def _metric_duplicate_fault(**params):
    """Stream: one metric sample is delivered twice (guardian must dedup)."""
    return stream_fault_hook("metric_duplicate", params)


@FAULTS.register("metric_delay")
def _metric_delay_fault(**params):
    """Stream: one metric sample arrives whole driver rounds late (reordered)."""
    return stream_fault_hook("metric_delay", params)
