"""Per-app Guardian: one autoscaler fed by a bounded metrics queue.

A :class:`Guardian` owns everything one application needs inside the
control plane: the materialized experiment unit (app, engine,
autoscaler, trace — built by the same
:func:`repro.experiments.build_unit` the offline runner uses), a bounded
:class:`asyncio.Queue` of incoming :class:`~repro.service.types.MetricSample`
ticks (the backpressure boundary — a driver outrunning the control loop
blocks instead of growing memory), and the decision history so far.

The tick path replicates :meth:`repro.core.loop.ControlLoop.run` step
for step — hook dispatch, observation, SLO read, record, decide — so a
guardian driven with the same rate floats as an offline run produces a
byte-identical history.  That is the service's core determinism
contract, enforced by ``tests/test_service.py`` and the CI service
gate.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.core.loop import LoopRecord, LoopResult
from repro.experiments.runner import (
    build_unit,
    capture_manager_state,
    hooks_on_step,
)
from repro.experiments.spec import ExperimentSpec
from repro.metrics.export import loop_result_to_dict
from repro.obs.decision import capture_decision_info, decision_record
from repro.service.rescaler import Rescaler
from repro.service.telemetry import GUARDIAN_QUEUE_PEAK, GUARDIAN_TICK_SECONDS
from repro.service.types import Decision, MetricSample, ServiceError

__all__ = ["Guardian"]


class Guardian:
    """Wraps one app's autoscaler behind the streaming tick protocol."""

    def __init__(
        self,
        app_id: str,
        spec: ExperimentSpec,
        repeat: int = 0,
        *,
        rescaler: Rescaler | None = None,
        queue_size: int = 64,
    ) -> None:
        if not app_id:
            raise ValueError("app_id must be a non-empty string")
        if queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        self.app_id = app_id
        self.spec = spec
        self.repeat = repeat
        self.unit = build_unit(spec, repeat)
        self.rescaler = rescaler or Rescaler()
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_size)
        self.records: list[LoopRecord] = []
        self.decisions: list[Decision] = []
        self.trace_records: list[dict[str, Any]] = []
        """Deterministic per-step decision records, filled when the
        spec's ``capture`` requested the ``decision_trace`` channel."""
        self.error: str | None = None
        self._on_step = hooks_on_step(spec)
        self._allocation = self.unit.autoscaler.allocation
        self._capture_trace = "decision_trace" in spec.capture

    # -- the tick protocol -------------------------------------------------------
    @property
    def steps_done(self) -> int:
        """How many control intervals this guardian has completed."""
        return len(self.records)

    @property
    def complete(self) -> bool:
        """True once the guardian has run its spec's full horizon.

        Only a complete run equals the offline experiment, so only a
        complete guardian's history may be flushed as a sweep-store
        unit entry.
        """
        return self.steps_done >= self.spec.n_steps

    def tick(self, sample: MetricSample) -> Decision:
        """Execute one control interval from a streamed metric sample.

        Mirrors one iteration of the offline loop exactly: the current
        allocation serves the interval, the environment is observed
        under the sample's rate, the record lands, and the autoscaler
        decides the next allocation.
        """
        step = self.steps_done
        if sample.step is not None and sample.step != step:
            raise ServiceError(
                f"app {self.app_id!r}: got step {sample.step}, "
                f"expected {step} (out-of-order or duplicated tick)"
            )
        loop = self.unit.loop
        if self._on_step is not None:
            self._on_step(step, loop)
        t = step * self.spec.interval
        rps = float(sample.rps)
        allocation = self._allocation
        self.rescaler.apply(self, allocation)
        metrics = self.rescaler.observe(self, allocation, rps)
        slo_now = loop.current_slo()
        record = LoopRecord(
            step=step,
            time=t,
            workload=rps,
            response=metrics.latency_p95,
            total_cpu=allocation.total(),
            violated=metrics.latency_p95 > slo_now,
            slo=slo_now,
            allocation=allocation,
        )
        self.records.append(record)
        self._allocation = self.unit.autoscaler.decide(metrics)
        if self._capture_trace:
            self.trace_records.append(
                decision_record(
                    step=step,
                    workload=rps,
                    response=metrics.latency_p95,
                    slo=slo_now,
                    violated=record.violated,
                    total_cpu=record.total_cpu,
                    next_total_cpu=self._allocation.total(),
                    decision=capture_decision_info(self.unit.autoscaler),
                )
            )
        decision = Decision(
            app=self.app_id,
            step=step,
            record=record,
            next_allocation=self._allocation,
        )
        self.decisions.append(decision)
        return decision

    # -- introspection -----------------------------------------------------------
    def result_payload(self) -> dict[str, Any]:
        """The decision history in the offline unit-worker encoding.

        Byte-identical (under canonical JSON dumping) to what
        ``repro.experiments.runner._run_unit_worker`` returns for the
        same (spec, repeat) once the run is complete — including the
        ``manager_state`` channel key exactly when the spec requested
        it.
        """
        payload = loop_result_to_dict(LoopResult(records=list(self.records)))
        if "manager_state" in self.spec.capture:
            payload["manager_state"] = capture_manager_state(
                self.unit.autoscaler
            )
        if self._capture_trace:
            payload["decision_trace"] = list(self.trace_records)
        return payload

    def state(self) -> dict[str, Any]:
        """The ``/state`` endpoint's payload for this app."""
        allocation = self._allocation
        return {
            "app": self.app_id,
            "spec_name": self.spec.name,
            "step": self.steps_done,
            "complete": self.complete,
            "slo": self.unit.loop.current_slo(),
            "allocation": [
                [name, allocation[name]] for name in allocation.names
            ],
            "total_cpu": allocation.total(),
            "manager_state": capture_manager_state(self.unit.autoscaler),
        }

    def status(self) -> dict[str, Any]:
        """The ``/apps`` endpoint's row for this app."""
        tick_p50 = GUARDIAN_TICK_SECONDS.quantile(0.5, app=self.app_id)
        tick_p95 = GUARDIAN_TICK_SECONDS.quantile(0.95, app=self.app_id)
        queue_peak = GUARDIAN_QUEUE_PEAK.value(app=self.app_id)
        return {
            "app": self.app_id,
            "spec_name": self.spec.name,
            "app_kind": self.spec.app,
            "autoscaler": self.spec.autoscaler.kind,
            "workload": self.spec.workload.kind,
            "repeat": self.repeat,
            "seed": self.unit.seed,
            "interval": self.spec.interval,
            "n_steps": self.spec.n_steps,
            "steps_done": self.steps_done,
            "complete": self.complete,
            "queue_depth": self.queue.qsize(),
            "queue_size": self.queue.maxsize,
            "queue_peak": int(queue_peak) if queue_peak is not None else 0,
            "tick_p50_ms": None if tick_p50 is None else tick_p50 * 1000.0,
            "tick_p95_ms": None if tick_p95 is None else tick_p95 * 1000.0,
            "violations": sum(r.violated for r in self.records),
            "error": self.error,
            "rescale": self.rescaler.stats(self.app_id).to_dict(),
        }
