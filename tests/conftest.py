"""Shared fixtures: a small synthetic app, the paper's prototypes, and
the sweep-layer builders (tmp store + small spec/grid factories) that the
sweep, batched, replay, fault, and distributed suites all build on."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import build_app
from repro.apps.spec import AppSpec, RequestClass, ServiceSpec, Stage
from repro.experiments import ExperimentSpec
from repro.sim import AnalyticalEngine, Allocation
from repro.sim.types import IntervalMetrics, ServiceMetrics
from repro.sweeps import SweepGrid, SweepStore


def build_tiny_app() -> AppSpec:
    """A 4-service app small enough to reason about by hand.

    Exposed as a plain function so hypothesis tests can construct it
    per-example without function-scoped-fixture health checks.
    """
    services = (
        ServiceSpec("front", cpu_demand=0.002, latency_floor=0.010,
                    burstiness=4.0, tier="frontend", language="nodejs"),
        ServiceSpec("logic", cpu_demand=0.001, latency_floor=0.008,
                    burstiness=2.0, tier="logic", language="go"),
        ServiceSpec("db", cpu_demand=0.0015, latency_floor=0.006,
                    burstiness=3.0, tier="db", language="mysql"),
        ServiceSpec("cache", cpu_demand=0.0005, latency_floor=0.002,
                    burstiness=1.5, tier="cache", language="memcached"),
    )
    classes = (
        RequestClass(
            name="read",
            weight=0.7,
            stages=(
                Stage.seq("front"),
                Stage.fanout("logic", ("cache", 0.8)),
                Stage.seq("db"),
            ),
        ),
        RequestClass(
            name="write",
            weight=0.3,
            stages=(
                Stage.seq("front"),
                Stage.seq("logic"),
                Stage.seq("db", 2.0),
            ),
        ),
    )
    return AppSpec(
        name="tiny",
        services=services,
        request_classes=classes,
        slo=0.100,
        hop_latency=0.0005,
        reference_workload=100.0,
    )


@pytest.fixture
def tiny_app() -> AppSpec:
    return build_tiny_app()


@pytest.fixture
def tiny_engine(tiny_app) -> AnalyticalEngine:
    return AnalyticalEngine(tiny_app, seed=42)


@pytest.fixture
def sockshop_app() -> AppSpec:
    return build_app("sockshop")


@pytest.fixture
def sockshop_engine(sockshop_app) -> AnalyticalEngine:
    return AnalyticalEngine(sockshop_app, seed=7)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def make_metrics(
    latency: float,
    workload: float = 100.0,
    utils: dict[str, float] | None = None,
    throttles: dict[str, float] | None = None,
    services: tuple[str, ...] = ("front", "logic", "db", "cache"),
) -> IntervalMetrics:
    """Hand-built IntervalMetrics for controller unit tests."""
    utils = utils or {}
    throttles = throttles or {}
    return IntervalMetrics(
        latency_p95=latency,
        workload_rps=workload,
        services={
            name: ServiceMetrics(
                utilization=utils.get(name, 0.10),
                throttle_seconds=throttles.get(name, 0.0),
                usage_cores=utils.get(name, 0.10),
                usage_p90_cores=utils.get(name, 0.10) * 1.5,
            )
            for name in services
        },
    )


@pytest.fixture
def metrics_factory():
    return make_metrics


@pytest.fixture
def tiny_allocation() -> Allocation:
    return Allocation({"front": 1.0, "logic": 0.8, "db": 0.9, "cache": 0.3})


# -- sweep-layer builders ------------------------------------------------------
# Plain functions (importable via ``from tests.conftest import ...``) so
# hypothesis tests can construct per-example values without
# function-scoped-fixture health checks; fixture wrappers below for
# ordinary tests.

def make_sweep_spec(**overrides) -> ExperimentSpec:
    """The canonical small sweep unit: sockshop @ 700 rps, 4 steps.

    Component overrides may be plain mappings (``workload={"kind": ...}``,
    ``hooks=[{...}]``) — the spec constructor coerces them.
    """
    base = dict(app="sockshop", workload=700.0, n_steps=4, seed=0)
    base.update(overrides)
    return ExperimentSpec(**base)


def make_small_grid(**grid_overrides) -> SweepGrid:
    """A 2x2 workload x alpha grid over :func:`make_sweep_spec` (x2 repeats)."""
    kwargs = dict(
        name="g",
        base=make_sweep_spec(repeats=2),
        axes=(
            {"name": "workload", "path": "workload", "values": [600.0, 700.0]},
            {"name": "alpha", "path": "autoscaler.params.alpha",
             "values": [0.4, 0.5]},
        ),
    )
    kwargs.update(grid_overrides)
    return SweepGrid(**kwargs)


@pytest.fixture
def sweep_store(tmp_path) -> SweepStore:
    """A fresh content-addressed store under this test's tmp dir."""
    return SweepStore(tmp_path / "sweep-store")


@pytest.fixture(scope="session")
def sweep_spec_factory():
    return make_sweep_spec


@pytest.fixture(scope="session")
def small_grid_factory():
    return make_small_grid
