"""repro — a reproduction of PEMA (HPDC '22).

*Practical Efficient Microservice Autoscaling with QoS Assurance*,
Hossen, Islam, Ahmed — a lightweight feedback-driven microservice resource
manager, reproduced end to end: the controller (Algorithm 1), workload-aware
dynamic ranging, the three prototype applications, a simulated
Kubernetes/Prometheus substrate, the OPTM/RULE baselines, and the full
evaluation harness.

The declarative experiment API (:mod:`repro.experiments`) is the main
entry point: one JSON-round-tripping :class:`ExperimentSpec` describes a
scenario (app, engine backend, workload trace, autoscaler, seeds,
mid-run hooks) and the shared runner reproduces it identically from
Python, the CLI (``python -m repro experiment --spec file.json``), and
the benchmark helpers.

Quickstart::

    from repro.experiments import ExperimentSpec, run_experiment

    spec = ExperimentSpec(app="sockshop", workload=700.0, n_steps=60,
                          seed=1, repeats=3)
    artifact = run_experiment(spec, parallel=3)
    print(artifact.summary()["settled_total_mean"])

The underlying pieces (controller, engines, baselines, control loop)
remain directly importable for custom wiring.
"""

from repro.apps import AppSpec, app_names, build_app
from repro.baselines import OptimumSearch, RuleBasedAutoscaler, StaticAllocator
from repro.core import (
    ControlLoop,
    LoopResult,
    PEMAConfig,
    PEMAController,
    StepAction,
    WorkloadAwarePEMA,
)
from repro.experiments import (
    ExperimentArtifact,
    ExperimentSpec,
    run_experiment,
    run_sweep,
)
from repro.metrics import MetricsCollector, MetricsStore
from repro.sim import Allocation, AnalyticalEngine, IntervalMetrics
from repro.sweeps import SweepGrid, SweepStore, run_grid

__version__ = "1.0.0"

__all__ = [
    "AppSpec",
    "build_app",
    "app_names",
    "Allocation",
    "IntervalMetrics",
    "AnalyticalEngine",
    "PEMAConfig",
    "PEMAController",
    "StepAction",
    "WorkloadAwarePEMA",
    "ControlLoop",
    "LoopResult",
    "ExperimentSpec",
    "ExperimentArtifact",
    "run_experiment",
    "run_sweep",
    "SweepGrid",
    "SweepStore",
    "run_grid",
    "MetricsStore",
    "MetricsCollector",
    "OptimumSearch",
    "RuleBasedAutoscaler",
    "StaticAllocator",
    "__version__",
]
