"""Fig. 12 — PEMA execution on TrainTicket and HotelReservation.

Paper: the same controller, unchanged, finds efficient allocations on the
41-service TrainTicket (SLO 900 ms) within ~35 iterations and on the
18-service HotelReservation (SLO 50 ms) within ~30, with a few mitigated
SLO violations.
"""

from __future__ import annotations

from benchmarks._report import emit
from repro.bench import format_table, optimum_total, pema_run

SCENARIOS = {
    "trainticket": (225.0, 35),
    "hotelreservation": (500.0, 30),
}


def run_fig12():
    return {
        app: pema_run(app, wl, iters, seed=21)
        for app, (wl, iters) in SCENARIOS.items()
    }


def test_fig12_pema_tt_hr(benchmark):
    runs = benchmark.pedantic(run_fig12, rounds=1, iterations=1)
    blocks = []
    for app, run in runs.items():
        wl, iters = SCENARIOS[app]
        result = run.result
        rows = [
            [
                it,
                round(float(result.total_cpu[it]), 2),
                round(float(result.responses[it] * 1000), 1),
            ]
            for it in range(0, iters, 3)
        ]
        optimum = optimum_total(app, wl)
        blocks.append(
            format_table(
                ["iter", "total_cpu", "response_ms"],
                rows,
                title=f"Fig. 12 — PEMA on {app} @ {wl:.0f} rps "
                f"(SLO {run.app.slo * 1000:.0f} ms, optimum {optimum:.2f})",
            )
        )
        assert result.settled_total() < result.total_cpu[0] * 0.85
        assert result.settled_total() / optimum < 1.4
        assert result.violation_rate() < 0.3
    emit("fig12_pema_tt_hr", "\n\n".join(blocks))
