"""Workload-aware PEMA — §3.4: pseudo-parallel PEMAs over dynamic ranges.

:class:`WorkloadAwarePEMA` wraps a :class:`RangeTree` of per-range
controllers behind the same ``decide(metrics) -> Allocation`` protocol as a
single controller:

* **bootstrap**: the first ``slope_samples`` intervals keep the initial
  allocation fixed and collect (workload, response) pairs to regress the
  latency-per-rps slope ``m`` (Fig. 10a);
* **routing**: each interval is routed to the leaf range covering its
  workload; that range's controller steps with the dynamic target
  ``R(λ) = m (λ - λ_max) + R_SLO`` (Eqn. 9);
* **range switches**: when the workload jumps to a different range (e.g.
  the Fig. 18 bursts), the new range's stored allocation is applied
  immediately and the cross-over interval is *not* fed to the controller —
  its metrics were produced under another range's allocation;
* **splitting**: ranges split per the tree policy, bootstrapping children
  from the parent's state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import PEMAConfig
from repro.core.controller import PEMAController
from repro.core.target import DynamicTarget, learn_slope
from repro.core.workload_range import RangeTree, SplitEvent, WorkloadRange
from repro.sim.types import Allocation, IntervalMetrics

__all__ = ["WorkloadAwarePEMA", "ManagerStep"]


@dataclass(frozen=True)
class ManagerStep:
    """Bookkeeping for one workload-aware step (reported by the benches)."""

    phase: str  # "bootstrap" | "switch" | "control"
    range_label: str
    pema_id: int
    target: float
    action: str
    allocation: Allocation
    split: SplitEvent | None = None


class WorkloadAwarePEMA:
    """Dynamic-workload-range resource manager."""

    def __init__(
        self,
        services: tuple[str, ...] | list[str],
        slo: float,
        initial_allocation: Allocation,
        *,
        workload_low: float,
        workload_high: float,
        min_range_width: float,
        config: PEMAConfig | None = None,
        split_after: int = 15,
        slope_samples: int = 6,
        seed: int = 0,
    ) -> None:
        if not 0 <= workload_low < workload_high:
            raise ValueError("need 0 <= workload_low < workload_high")
        if slope_samples < 0:
            raise ValueError("slope_samples must be >= 0")
        self.slo = float(slo)
        self.config = config or PEMAConfig()
        self.rng = np.random.default_rng(seed)
        root = PEMAController(
            services,
            slo,
            initial_allocation,
            self.config,
            seed=int(self.rng.integers(2**31 - 1)),
        )
        self.tree = RangeTree.initial(
            workload_low,
            workload_high,
            root,
            min_width=min_range_width,
            split_after=split_after,
        )
        self.slope_samples = slope_samples
        self._bootstrap_workloads: list[float] = []
        self._bootstrap_responses: list[float] = []
        self.dynamic_target: DynamicTarget | None = (
            DynamicTarget(slo=self.slo, slope=0.0) if slope_samples == 0 else None
        )
        self._initial_allocation = initial_allocation
        self._active: WorkloadRange | None = None
        self.history: list[ManagerStep] = []
        self._last_pema: dict | None = None

    # -- protocol ---------------------------------------------------------------
    @property
    def allocation(self) -> Allocation:
        if self._active is not None:
            return self._active.controller.allocation
        return self._initial_allocation

    def decide(self, metrics: IntervalMetrics) -> Allocation:
        """Route the interval and return the next allocation."""
        # Phase 1: slope bootstrap with a fixed allocation (Fig. 10a).
        if self.dynamic_target is None:
            self._bootstrap_workloads.append(metrics.workload_rps)
            self._bootstrap_responses.append(metrics.latency_p95)
            if len(self._bootstrap_workloads) >= self.slope_samples:
                slope = learn_slope(
                    self._bootstrap_workloads, self._bootstrap_responses
                )
                self.dynamic_target = DynamicTarget(slo=self.slo, slope=slope)
            self._last_pema = None
            self._log(
                phase="bootstrap",
                leaf=None,
                target=self.slo,
                action="hold",
                allocation=self._initial_allocation,
                split=None,
            )
            return self._initial_allocation

        leaf = self.tree.find(metrics.workload_rps)

        # Phase 2: range switch — apply the new range's allocation, skip the
        # controller step for this cross-over interval.
        if leaf is not self._active:
            self._active = leaf
            self._last_pema = None
            self._log(
                phase="switch",
                leaf=leaf,
                target=self.slo,
                action="switch",
                allocation=leaf.controller.allocation,
                split=None,
            )
            return leaf.controller.allocation

        # Phase 3: normal control step with the dynamic target.
        target = self.dynamic_target.target(metrics.workload_rps, leaf.high)
        result = leaf.controller.step(metrics, reduction_target=target)
        self._last_pema = leaf.controller.last_decision()
        split = self.tree.note_step(leaf, self.rng)
        if split is not None:
            # The active leaf was replaced by its children; re-resolve on
            # the next interval.
            self._active = None
        self._log(
            phase="control",
            leaf=leaf,
            target=target,
            action=result.action.value,
            allocation=result.allocation,
            split=split,
        )
        return result.allocation

    # -- introspection --------------------------------------------------------------
    @property
    def slope(self) -> float | None:
        return None if self.dynamic_target is None else self.dynamic_target.slope

    def range_labels(self) -> tuple[str, ...]:
        return tuple(
            leaf.label() for leaf in sorted(self.tree.leaves, key=lambda r: r.low)
        )

    def state_snapshot(self) -> dict:
        """JSON-ready internal state: the manager-state artifact channel.

        Everything the Fig. 13/14 reports inspect — the learned
        latency-per-rps slope, every recorded range split, and the final
        leaf ranges (sorted by lower bound) — as plain data that
        round-trips losslessly through the artifact/store JSON codecs.
        The always-on service reuses this snapshot live: its ``/state``
        endpoint and state-store flushes serve exactly this payload, so
        a service run and an offline ``capture`` run expose the manager
        through one schema.
        """
        slope = self.slope
        return {
            "kind": "workload_aware_pema",
            "slo": float(self.slo),
            "slope": None if slope is None else float(slope),
            "splits": [
                {
                    "step": int(s.step),
                    "parent": [float(s.parent[0]), float(s.parent[1])],
                    "lower": [float(s.lower[0]), float(s.lower[1])],
                    "upper": [float(s.upper[0]), float(s.upper[1])],
                    "lower_pema_id": int(s.lower_pema_id),
                    "upper_pema_id": int(s.upper_pema_id),
                }
                for s in self.tree.splits
            ],
            "ranges": [
                {
                    "low": float(leaf.low),
                    "high": float(leaf.high),
                    "pema_id": int(leaf.pema_id),
                    "iterations": int(leaf.iterations),
                }
                for leaf in sorted(self.tree.leaves, key=lambda r: r.low)
            ],
            "n_processes": int(self.tree.n_processes()),
        }

    def last_action(self) -> str:
        return self.history[-1].action if self.history else "none"

    def last_decision(self) -> dict | None:
        """The previous step's causal record (``decision_trace`` hook).

        Wraps the routed controller's own :func:`pema_decision_info`
        record (``None`` outside the control phase) with the routing
        context — which range handled the step and under what dynamic
        target — so a trace shows both layers of the §3.4 manager.
        """
        if not self.history:
            return None
        last = self.history[-1]
        return {
            "kind": "workload_aware_pema",
            "phase": last.phase,
            "range": last.range_label,
            "pema_id": int(last.pema_id),
            "target": float(last.target),
            "action": last.action,
            "split": last.split is not None,
            "pema": self._last_pema,
        }

    def _log(
        self,
        phase: str,
        leaf: WorkloadRange | None,
        target: float,
        action: str,
        allocation: Allocation,
        split: SplitEvent | None,
    ) -> None:
        self.history.append(
            ManagerStep(
                phase=phase,
                range_label="" if leaf is None else leaf.label(),
                pema_id=0 if leaf is None else leaf.pema_id,
                target=target,
                action=action,
                allocation=allocation,
                split=split,
            )
        )
