"""repro — a reproduction of PEMA (HPDC '22).

*Practical Efficient Microservice Autoscaling with QoS Assurance*,
Hossen, Islam, Ahmed — a lightweight feedback-driven microservice resource
manager, reproduced end to end: the controller (Algorithm 1), workload-aware
dynamic ranging, the three prototype applications, a simulated
Kubernetes/Prometheus substrate, the OPTM/RULE baselines, and the full
evaluation harness.

Quickstart::

    from repro import build_app, AnalyticalEngine, PEMAController, ControlLoop
    from repro.workload import ConstantWorkload

    app = build_app("sockshop")
    engine = AnalyticalEngine(app, seed=1)
    pema = PEMAController(
        app.service_names, app.slo, app.generous_allocation(700.0), seed=1
    )
    result = ControlLoop(engine, pema, ConstantWorkload(700.0)).run(70)
    print(result.settled_total(), result.violation_rate())
"""

from repro.apps import AppSpec, app_names, build_app
from repro.baselines import OptimumSearch, RuleBasedAutoscaler, StaticAllocator
from repro.core import (
    ControlLoop,
    LoopResult,
    PEMAConfig,
    PEMAController,
    StepAction,
    WorkloadAwarePEMA,
)
from repro.metrics import MetricsCollector, MetricsStore
from repro.sim import Allocation, AnalyticalEngine, IntervalMetrics

__version__ = "1.0.0"

__all__ = [
    "AppSpec",
    "build_app",
    "app_names",
    "Allocation",
    "IntervalMetrics",
    "AnalyticalEngine",
    "PEMAConfig",
    "PEMAController",
    "StepAction",
    "WorkloadAwarePEMA",
    "ControlLoop",
    "LoopResult",
    "MetricsStore",
    "MetricsCollector",
    "OptimumSearch",
    "RuleBasedAutoscaler",
    "StaticAllocator",
    "__version__",
]
