"""Content-addressed on-disk cache for sweep results.

Every cache entry is keyed by the SHA-256 of a canonical JSON encoding of
*what produced it* — for a unit result, the full serialized spec plus the
repeat index — so a cache hit is exactly "this computation already ran":
specs that differ in any field hash to different entries, and entries are
shared between figures that sweep overlapping (app, workload, seed) points.

Robustness properties the scheduler relies on:

* **atomic writes** — entries are written to a temp file in the target
  directory and ``os.replace``d into place, so a killed sweep never leaves
  a half-written entry and concurrent writers of the same key can only
  produce one complete file (last writer wins, both wrote the same bytes);
* **corruption-tolerant loads** — a truncated/garbled/foreign file is a
  cache miss (counted in :attr:`SweepStore.stats`), never an exception, and
  the recomputed result simply overwrites it;
* **self-describing entries** — each file stores its own key object and is
  verified against the requested key on load, so a hash collision or a
  misplaced file cannot alias a different computation.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, TYPE_CHECKING

from repro.obs.metrics import default_registry

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.spec import ExperimentSpec

__all__ = [
    "JsonDirectoryStore",
    "SweepStore",
    "StoreStats",
    "canonical_key",
]

_FORMAT = 1

# Process-global mirrors of the per-handle StoreStats counters: store
# handles come and go (one per sweep, per service state dir), the
# registry series aggregate across all of them for the /metrics scrape.
_REG = default_registry()
_STORE_HITS = _REG.counter(
    "repro_store_hits_total", "Result-store cache hits (all handles)."
)
_STORE_MISSES = _REG.counter(
    "repro_store_misses_total", "Result-store cache misses (all handles)."
)
_STORE_WRITES = _REG.counter(
    "repro_store_writes_total", "Result-store entries written (all handles)."
)
_STORE_CORRUPT = _REG.counter(
    "repro_store_corrupt_total",
    "Corrupt/foreign result-store entries treated as misses.",
)


def canonical_key(key_obj: Any) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of ``key_obj``."""
    encoded = json.dumps(
        key_obj, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


@dataclass
class StoreStats:
    """Counters for one store handle (not persisted)."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0

    def to_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt": self.corrupt,
        }


@dataclass
class JsonDirectoryStore:
    """A directory of content-addressed JSON entries (the raw backend).

    Knows nothing about experiments: any JSON-encodable key object maps
    to an atomic, corruption-tolerant file.  :class:`SweepStore` layers
    the experiment-aware key constructors on top; the always-on service's
    state store (:mod:`repro.service.state`) uses this class directly as
    its ``directory`` backend, so both persistence planes share one
    on-disk format and one robustness contract.
    """

    root: Path
    stats: StoreStats = field(default_factory=StoreStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key_obj: Any) -> Path:
        digest = canonical_key(key_obj)
        return self.root / digest[:2] / f"{digest}.json"

    # -- raw payload access ------------------------------------------------------
    def get_raw(self, key_obj: Any) -> Any | None:
        """The stored payload for ``key_obj``, or None on miss/corruption."""
        path = self.path_for(key_obj)
        try:
            entry = json.loads(path.read_text())
        except FileNotFoundError:
            self.stats.misses += 1
            _STORE_MISSES.inc()
            return None
        except (OSError, UnicodeDecodeError, json.JSONDecodeError):
            self.stats.corrupt += 1
            self.stats.misses += 1
            _STORE_CORRUPT.inc()
            _STORE_MISSES.inc()
            return None
        # A foreign/garbled-but-valid-JSON file is also just a miss.
        if (
            not isinstance(entry, dict)
            or "payload" not in entry
            or canonical_key(entry.get("key")) != canonical_key(key_obj)
        ):
            self.stats.corrupt += 1
            self.stats.misses += 1
            _STORE_CORRUPT.inc()
            _STORE_MISSES.inc()
            return None
        self.stats.hits += 1
        _STORE_HITS.inc()
        return entry["payload"]

    def put_raw(self, key_obj: Any, payload: Any) -> Path:
        """Atomically persist ``payload`` under ``key_obj``."""
        path = self.path_for(key_obj)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"format": _FORMAT, "key": key_obj, "payload": payload}
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{path.stem[:16]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(entry, fh, sort_keys=True, allow_nan=False)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        _STORE_WRITES.inc()
        return path

    # -- maintenance -------------------------------------------------------------
    def entry_paths(self) -> list[Path]:
        return sorted(self.root.glob("??/*.json"))

    def __len__(self) -> int:
        return len(self.entry_paths())

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        paths = self.entry_paths()
        for path in paths:
            try:
                path.unlink()
            except FileNotFoundError:
                pass
        return len(paths)


@dataclass
class SweepStore(JsonDirectoryStore):
    """A directory of content-addressed JSON cache entries."""

    # -- key construction --------------------------------------------------------
    @staticmethod
    def unit_key(spec: "ExperimentSpec", repeat: int) -> dict[str, Any]:
        """The cache key of one (spec, repeat) unit result.

        Fields that don't influence the unit's computation are excluded
        so grids sweeping the same physical point share entries:
        ``name`` is cosmetic, and ``repeats`` only bounds the repeat
        index (repeat ``r`` is fully determined by ``seed + r``), so a
        3-repeat and a 5-repeat sweep of the same base share their
        common units.
        """
        spec_data = spec.to_dict()
        spec_data.pop("name", None)
        spec_data.pop("repeats", None)
        return {
            "kind": "unit",
            "format": _FORMAT,
            "spec": spec_data,
            "repeat": int(repeat),
        }

    @staticmethod
    def optimum_key(
        app: str, workload: float, restarts: int
    ) -> dict[str, Any]:
        """The cache key of one OPTM search (see ``optimum_total``)."""
        return {
            "kind": "optimum",
            "format": _FORMAT,
            "app": app,
            "workload": round(float(workload), 6),
            "restarts": int(restarts),
        }

    # -- unit results ------------------------------------------------------------
    def get_result(
        self, spec: "ExperimentSpec", repeat: int
    ) -> dict[str, Any] | None:
        """A stored unit run history (``loop_result_to_dict`` form) or None."""
        payload = self.get_raw(self.unit_key(spec, repeat))
        if payload is not None and not (
            isinstance(payload, dict) and isinstance(payload.get("records"), list)
        ):
            # Structurally wrong payload: treat as corruption, recompute.
            # (The global counters are monotonic, so only the per-handle
            # hit tally is rolled back.)
            self.stats.hits -= 1
            self.stats.misses += 1
            self.stats.corrupt += 1
            _STORE_CORRUPT.inc()
            _STORE_MISSES.inc()
            return None
        return payload

    def put_result(
        self, spec: "ExperimentSpec", repeat: int, result: dict[str, Any]
    ) -> Path:
        return self.put_raw(self.unit_key(spec, repeat), result)
