"""Grouped reductions over sweep results.

Turns a :class:`~repro.sweeps.scheduler.GridRun` into the numbers a figure
reports: per-cell reductions over seeds (mean/std/p95 settled CPU,
violation rate, p95 response, CPU-time cost), per-axis tables that average
the remaining axes away, and a canonical JSON summary whose bytes depend
only on the grid and its results — an interrupted-then-resumed sweep and
an uninterrupted one aggregate to identical files.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.bench.tables import format_table
from repro.experiments.artifact import ExperimentArtifact
from repro.sweeps.scheduler import GridRun

__all__ = [
    "artifact_metrics",
    "METRIC_NAMES",
    "grid_summary",
    "grid_summary_json",
    "group_reduce",
    "cells_table",
    "axis_table",
]

#: The per-cell metrics, in report order.
METRIC_NAMES = (
    "settled_total_mean",
    "settled_total_std",
    "settled_total_p95",
    "violation_rate_mean",
    "recovery_steps_max",
    "response_p95_mean",
    "cost_cpu_seconds_mean",
)


def _longest_violation_streak(violated: Iterable[bool]) -> int:
    """Length of the longest run of consecutive SLO-violating intervals.

    The robustness report's recovery-time proxy: after a disturbance, a
    controller that re-establishes the SLO quickly has a short worst
    streak, one that never recovers has a streak the length of the
    remaining horizon.
    """
    longest = current = 0
    for flag in violated:
        current = current + 1 if flag else 0
        if current > longest:
            longest = current
    return longest

_REDUCERS: dict[str, Callable[[Sequence[float]], float]] = {
    "mean": lambda v: float(np.mean(v)),
    "p95": lambda v: float(np.percentile(v, 95)),
    "min": lambda v: float(np.min(v)),
    "max": lambda v: float(np.max(v)),
    "total": lambda v: float(np.sum(v)),
}


def artifact_metrics(
    artifact: ExperimentArtifact, *, tail: int = 5
) -> dict[str, float]:
    """One cell's reductions over its seeds.

    ``cost_cpu_seconds`` integrates the allocation over the run
    (CPU·seconds actually held, not just the settled level), which is the
    quantity a per-core bill scales with.
    """
    settled = artifact.settled_totals(tail)
    rates = artifact.violation_rates()
    p95s = [
        float(np.percentile(result.responses, 95))
        for result in artifact.results
    ]
    interval = artifact.spec.interval
    costs = [
        float(np.sum(result.total_cpu)) * interval
        for result in artifact.results
    ]
    streaks = [
        _longest_violation_streak(r.violated for r in result.records)
        for result in artifact.results
    ]
    return {
        "settled_total_mean": float(np.mean(settled)),
        "settled_total_std": float(np.std(settled)),
        "settled_total_p95": float(np.percentile(settled, 95)),
        "violation_rate_mean": float(np.mean(rates)),
        "recovery_steps_max": float(np.max(streaks)),
        "response_p95_mean": float(np.mean(p95s)),
        "cost_cpu_seconds_mean": float(np.mean(costs)),
    }


def grid_summary(run: GridRun, *, tail: int = 5) -> dict[str, Any]:
    """The canonical aggregate of a grid run (JSON-ready, deterministic)."""
    return {
        "grid": run.grid.name,
        "axes": [axis.name for axis in run.grid.axes],
        "cells": [
            {
                "name": cell.spec.name,
                "coords": dict(cell.coords),
                "metrics": artifact_metrics(artifact, tail=tail),
            }
            for cell, artifact in zip(run.cells, run.artifacts)
        ],
    }


def grid_summary_json(run: GridRun, *, tail: int = 5) -> str:
    """Byte-stable summary encoding (the ``repro sweep --out`` format)."""
    return json.dumps(grid_summary(run, tail=tail), indent=2, sort_keys=True)


def group_reduce(
    run: GridRun,
    by: Sequence[str],
    *,
    metrics: Iterable[str] = METRIC_NAMES,
    reduce: str = "mean",
    tail: int = 5,
) -> list[dict[str, Any]]:
    """Reduce cells that share coordinates on the ``by`` axes.

    Cells are grouped by their labels on the named axes (in grid order);
    every requested metric is reduced across each group with ``reduce``
    (one of ``mean``/``p95``/``min``/``max``/``total``).  Returns one row
    dict per group: the group's coordinates, its cell count, and the
    reduced metrics.
    """
    axis_names = [axis.name for axis in run.grid.axes]
    for name in by:
        if name not in axis_names:
            raise KeyError(
                f"unknown axis {name!r} (grid axes: {axis_names})"
            )
    try:
        reducer = _REDUCERS[reduce]
    except KeyError:
        raise KeyError(
            f"unknown reducer {reduce!r} (known: {sorted(_REDUCERS)})"
        ) from None
    metrics = list(metrics)
    groups: dict[tuple[str, ...], list[dict[str, float]]] = {}
    for cell, artifact in zip(run.cells, run.artifacts):
        key = tuple(cell.coords[name] for name in by)
        groups.setdefault(key, []).append(artifact_metrics(artifact, tail=tail))
    rows = []
    for key, members in groups.items():
        row: dict[str, Any] = dict(zip(by, key))
        row["cells"] = len(members)
        for metric in metrics:
            row[metric] = reducer([m[metric] for m in members])
        rows.append(row)
    return rows


def cells_table(
    run: GridRun,
    *,
    metrics: Iterable[str] = ("settled_total_mean", "violation_rate_mean"),
    tail: int = 5,
    title: str = "",
) -> str:
    """One row per cell: axis coordinates plus the selected metrics."""
    metrics = list(metrics)
    # Zero-axis grids (single-cell regression anchors) key rows by name.
    key_headers = [a.name for a in run.grid.axes] or ["cell"]
    rows = []
    for cell, artifact in zip(run.cells, run.artifacts):
        keys = (
            [cell.coords[name] for name in key_headers]
            if run.grid.axes
            else [cell.spec.name]
        )
        cell_metrics = artifact_metrics(artifact, tail=tail)
        rows.append(keys + [cell_metrics[m] for m in metrics])
    return format_table(
        key_headers + metrics,
        rows,
        title=title or (run.grid.title or run.grid.name),
    )


def axis_table(
    run: GridRun,
    axis: str,
    *,
    metrics: Iterable[str] = ("settled_total_mean", "violation_rate_mean"),
    reduce: str = "mean",
    tail: int = 5,
    title: str = "",
) -> str:
    """A per-axis view: other axes reduced away with ``reduce``."""
    metrics = list(metrics)
    rows = group_reduce(
        run, [axis], metrics=metrics, reduce=reduce, tail=tail
    )
    return format_table(
        [axis, "cells"] + metrics,
        [[r[axis], r["cells"]] + [r[m] for m in metrics] for r in rows],
        title=title or f"{run.grid.name} by {axis} ({reduce})",
    )
