#!/usr/bin/env python
"""Quickstart: run PEMA against a simulated SockShop deployment.

This is the paper's Fig. 11 scenario through the declarative experiment
API: one :class:`ExperimentSpec` names the app, workload, autoscaler and
schedule; ``run_experiment`` builds everything and returns an artifact
with the run history and summary statistics.  ``run_comparison`` then
reports the same cell against the exhaustive-search optimum (OPTM) and
the rule-based autoscaler (RULE).

The spec serializes to JSON, so the identical scenario can be replayed
from the command line:  python -m repro experiment --spec spec.json

Run:  python examples/quickstart.py
"""

from repro import build_app
from repro.experiments import ExperimentSpec, run_comparison, run_experiment

WORKLOAD_RPS = 700.0
ITERATIONS = 70

SPEC = ExperimentSpec(
    name="quickstart-sockshop",
    app="sockshop",
    workload=WORKLOAD_RPS,  # shorthand for a constant-rate trace
    n_steps=ITERATIONS,
    autoscaler={"kind": "pema",
                "params": {"explore_a": 0.05, "explore_b": 0.005}},
    seed=2,
)


def main() -> None:
    app = build_app(SPEC.app)
    print(f"app: {app.name} ({app.n_services} services, "
          f"SLO {app.slo * 1000:.0f} ms), workload {WORKLOAD_RPS:.0f} rps\n")
    print("spec:")
    print(SPEC.to_json())

    artifact = run_experiment(SPEC)
    result = artifact.results[0]

    print("\niter  total_cpu  p95_ms  note")
    for record in result.records[::5]:
        note = "SLO VIOLATION" if record.violated else ""
        print(f"{record.step:4d}  {record.total_cpu:9.2f}  "
              f"{record.response * 1000:6.0f}  {note}")

    cell = run_comparison(SPEC, rule_steps=25, pema_artifact=artifact)
    settled = artifact.mean_settled_total()
    print(f"\nstart allocation : "
          f"{result.records[0].total_cpu:6.2f} CPU")
    print(f"PEMA settled     : {settled:6.2f} CPU "
          f"({result.violation_count()} violations in {ITERATIONS} intervals)")
    print(f"optimum (OPTM)   : {cell['optm_total']:6.2f} CPU")
    print(f"rule-based (RULE): {cell['rule_total']:6.2f} CPU")
    print(f"\nPEMA is {cell['pema_over_optm']:.2f}x the optimum and saves "
          f"{cell['pema_savings_vs_rule'] * 100:.0f}% vs RULE.")


if __name__ == "__main__":
    main()
