"""Benchmark resource-allocation strategies: OPTM, RULE, PID, brownout, static."""

from repro.baselines.brownout import BrownoutController
from repro.baselines.optm import OptimumResult, OptimumSearch
from repro.baselines.optm_batch import (
    OptimumAllocator,
    OptimumBatch,
    OptimumRequest,
)
from repro.baselines.pid import PIDController
from repro.baselines.rule import RuleBasedAutoscaler, RuleBatch
from repro.baselines.static import StaticAllocator

__all__ = [
    "BrownoutController",
    "OptimumSearch",
    "OptimumResult",
    "OptimumAllocator",
    "OptimumBatch",
    "OptimumRequest",
    "PIDController",
    "RuleBasedAutoscaler",
    "RuleBatch",
    "StaticAllocator",
]
