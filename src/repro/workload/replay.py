"""Trace replay: long-horizon workload schedules built from segments.

The paper's capstone evaluation (Figs. 13/14) replays 36 hours of the
Wikipedia diurnal trace through the full control stack.  A
:class:`ReplayTrace` makes that a first-class, declarative workload: an
ordered list of *segments*, each an arbitrary base trace (diurnal
Wikipedia, noisy constants, bursts, whole :class:`PhasedTrace`
schedules) played for a bounded duration with its clock restarted —
exactly the :class:`~repro.workload.trace.PhasedTrace` composition rule
— plus an optional ``loop`` that wraps time modulo the schedule length
for open-ended runs over a finite recording.

Replay traces implement the vectorized ``rate_batch`` contract
(bit-identical to per-``t`` ``rate`` calls), so replay cells join the
batched sweep engine's groups: the whole 36-hour rate series of a cell
is evaluated in one call instead of one Python call per control
interval.
"""

from __future__ import annotations

import numpy as np

from repro.workload.trace import PhasedTrace, WorkloadTrace, batch_rates

__all__ = ["ReplaySegment", "ReplayTrace", "rate_schedule"]


def rate_schedule(
    trace: WorkloadTrace,
    interval: float,
    n_steps: int,
    *,
    start_step: int = 0,
) -> np.ndarray:
    """The per-interval rate series ``rate(step * interval)`` as one array.

    One vectorized ``rate_batch`` evaluation of control-interval sample
    times ``start_step, ..., start_step + n_steps - 1`` — bit-identical
    to the per-step scalar calls (the :func:`batch_rates` contract).
    Both the batched sweep engine and the streaming service's replay
    load driver evaluate their schedules through this helper, so a
    driven service consumes exactly the floats an offline run would.
    """
    if interval <= 0:
        raise ValueError("interval must be positive")
    if n_steps < 0:
        raise ValueError("n_steps must be >= 0")
    steps = np.arange(start_step, start_step + n_steps, dtype=np.float64)
    return batch_rates(trace, steps * float(interval))


class ReplaySegment:
    """One replay segment: a base trace and how long it plays.

    ``duration`` is in seconds; ``None`` marks an open-ended final
    segment (disallowed when the replay loops).
    """

    def __init__(
        self, source: WorkloadTrace, duration: float | None = None
    ) -> None:
        if duration is not None and duration <= 0:
            raise ValueError("segment duration must be positive")
        self.source = source
        self.duration = None if duration is None else float(duration)


class ReplayTrace:
    """Sequential segments with restarted clocks, optionally looped.

    Single-segment replays are transparent: ``ReplayTrace([segment])``
    returns exactly ``segment.source.rate(t)`` for every ``t`` inside the
    segment, so a figure ported onto a replay spec reproduces its legacy
    trace byte-for-byte.
    """

    def __init__(
        self, segments: list[ReplaySegment], *, loop: bool = False
    ) -> None:
        if not segments:
            raise ValueError("need at least one replay segment")
        for i, segment in enumerate(segments):
            if segment.duration is None and i != len(segments) - 1:
                raise ValueError("only the last segment may be open-ended")
        if loop and segments[-1].duration is None:
            raise ValueError("a looped replay needs every duration bounded")
        self.segments = list(segments)
        self.loop = loop
        self._phased = PhasedTrace(
            [(s.source, s.duration) for s in segments]
        )
        self._total = (
            sum(s.duration for s in segments)
            if segments[-1].duration is not None
            else None
        )

    @property
    def duration(self) -> float | None:
        """Total schedule length in seconds (None when open-ended)."""
        return self._total

    def rate(self, t: float) -> float:
        if self.loop:
            t = t % self._total
        return self._phased.rate(t)

    def rate_batch(self, times: np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=np.float64)
        if self.loop:
            times = times % self._total
        return batch_rates(self._phased, times)
