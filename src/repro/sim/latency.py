"""Per-visit latency model and end-to-end aggregation.

Latency of one visit to service *i* decomposes into:

* a latency floor ``l0_i`` — service time with ample CPU;
* queueing inflation proportional to the overload pressure
  ``E[(N_i - x_i)+] / x_i`` (work that could not run immediately);
* a throttle penalty that kicks in once the throttled-period fraction
  crosses the tail-critical level (≈5% of periods, at which point the p95
  request is hit by a frozen period).

Both penalty terms scale with the service's own latency floor so that the
model is self-consistent across applications whose SLOs span 50 ms to
900 ms (see DESIGN.md §4: the DES realizes the absolute CFS period; the
analytical engine works in relative latency units).

End-to-end latency aggregates per-visit latencies over a request class's
execution plan: stages are sequential, entries within a stage run in
parallel (the max governs), repeated visits to a service within an entry
are sequential.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.apps.spec import AppSpec

__all__ = [
    "LatencyParams",
    "visit_latency",
    "end_to_end_latency",
    "end_to_end_latency_batch",
]


@dataclass(frozen=True)
class LatencyParams:
    """Tunables of the visit-latency model (shared across apps)."""

    queue_gain: float = 3.0
    """Latency floors multiplied by ``1 + queue_gain * overload``."""

    throttle_gain: float = 5.0
    """Scale of the throttle penalty once past the critical fraction."""

    frac_critical: float = 0.05
    """Throttled-period fraction at which the p95 request is affected."""

    throttle_power: float = 3.0
    """Exponent of the normalized throttle ratio.  Cubic makes operating
    *below* the bottleneck knee rapidly catastrophic (every extra frozen
    period compounds through queue growth on a real system) while leaving
    the above-knee region, where the controllers live, gentle."""

    saturation: float = 20.0
    """Cap on the normalized throttle ratio, keeping latency finite.

    High enough that starving any service far below its bottleneck is
    catastrophic for end-to-end latency (as on a real system, where a
    fully-throttled service's queue grows without bound) while still
    keeping the search landscape finite."""

    def __post_init__(self) -> None:
        if self.queue_gain < 0 or self.throttle_gain < 0:
            raise ValueError("gains must be non-negative")
        if self.throttle_power < 1:
            raise ValueError("throttle_power must be >= 1")
        if not 0 < self.frac_critical < 1:
            raise ValueError("frac_critical must be in (0, 1)")
        if self.saturation <= 0:
            raise ValueError("saturation must be positive")


def visit_latency(
    floors: np.ndarray,
    overload: np.ndarray,
    throttled_frac: np.ndarray,
    params: LatencyParams,
) -> np.ndarray:
    """p95-scale latency of one visit to each service (vectorized).

    Monotonicity: both ``overload`` and ``throttled_frac`` are non-increasing
    in the allocation, so visit latency is non-increasing in the allocation —
    the property behind the paper's monotone-reduction navigation (Fig. 7).
    """
    floors = np.asarray(floors, dtype=np.float64)
    overload = np.asarray(overload, dtype=np.float64)
    throttled_frac = np.asarray(throttled_frac, dtype=np.float64)
    ratio = np.minimum(throttled_frac / params.frac_critical, params.saturation)
    inflation = (
        1.0
        + params.queue_gain * overload
        + params.throttle_gain * ratio**params.throttle_power
    )
    return floors * inflation


def end_to_end_latency(
    app: "AppSpec", per_visit: Mapping[str, float] | np.ndarray
) -> float:
    """Aggregate per-visit latencies into application p95 latency (seconds).

    ``per_visit`` is either a mapping ``service -> latency`` or an array in
    the app's service order.  Traffic classes are mixed by weight; each
    class walks its stages sequentially, taking the max across parallel
    entries and adding the per-hop network latency.
    """
    if isinstance(per_visit, np.ndarray):
        lat = {name: float(v) for name, v in zip(app.service_names, per_visit)}
    else:
        lat = {name: float(per_visit[name]) for name in app.service_names}

    total = 0.0
    for rc in app.request_classes:
        class_latency = 0.0
        for stage in rc.stages:
            branch = max(visits * lat[svc] for svc, visits in stage.parallel)
            class_latency += branch + app.hop_latency
        total += rc.weight * class_latency
    return total


def end_to_end_latency_batch(app: "AppSpec", per_visit: np.ndarray) -> np.ndarray:
    """Batched :func:`end_to_end_latency`: ``(B, S)`` visits → ``(B,)`` p95s.

    Walks the same plan in the same order as the scalar aggregation —
    per-stage maxima, then sequential sums — with every float operation
    applied elementwise across the batch, so each row is bit-identical to
    the scalar result for that row.
    """
    per_visit = np.asarray(per_visit, dtype=np.float64)
    if per_visit.ndim != 2 or per_visit.shape[1] != len(app.service_names):
        raise ValueError(
            f"per_visit must be (B, {len(app.service_names)}): {per_visit.shape}"
        )
    column = {name: per_visit[:, j] for j, name in enumerate(app.service_names)}
    total = np.zeros(per_visit.shape[0], dtype=np.float64)
    for rc in app.request_classes:
        class_latency = np.zeros_like(total)
        for stage in rc.stages:
            branch: np.ndarray | None = None
            for svc, visits in stage.parallel:
                term = visits * column[svc]
                branch = term if branch is None else np.maximum(branch, term)
            class_latency += branch + app.hop_latency
        total += rc.weight * class_latency
    return total
