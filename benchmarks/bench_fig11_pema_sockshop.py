"""Fig. 11 — PEMA execution on SockShop @ 700 rps, high vs low exploration.

Paper: optimum total CPU is 8.8 (found by exhaustive search); PEMA starts
generous, walks down in ~20 iterations, occasionally jumps back up via
exploration (high setting: A=0.1, B=0.01; low: A=0.05, B=0.005), and both
settle near the optimum within 70 iterations with only a few unintentional
SLO violations.

The two exploration settings are
``benchmarks/grids/fig11_pema_sockshop.json``; OPTM is the analytical
exhaustive search at the same point.
"""

from __future__ import annotations

import numpy as np

from benchmarks._grids import figure_optimum, run_figure_grid
from benchmarks._report import emit
from repro.bench import format_table

WORKLOAD = 700.0
ITERS = 70


def run_fig11():
    run = run_figure_grid("fig11_pema_sockshop")
    results = {
        cell.coords["exploration"]: artifact.results[0]
        for cell, artifact in run
    }
    optimum = figure_optimum("sockshop", WORKLOAD)
    return results, optimum


def test_fig11_pema_sockshop(benchmark):
    results, optimum = benchmark.pedantic(run_fig11, rounds=1, iterations=1)
    rows = []
    for it in range(0, ITERS, 5):
        rows.append(
            [
                it,
                round(float(results["high"].total_cpu[it]), 2),
                round(float(results["high"].responses[it] * 1000), 0),
                round(float(results["low"].total_cpu[it]), 2),
                round(float(results["low"].responses[it] * 1000), 0),
            ]
        )
    summary = [
        [
            label,
            round(result.settled_total(), 2),
            round(result.settled_total() / optimum, 2),
            result.violation_count(),
        ]
        for label, result in results.items()
    ]
    emit(
        "fig11_pema_sockshop",
        format_table(
            ["iter", "cpu_high", "resp_ms_high", "cpu_low", "resp_ms_low"],
            rows,
            title=f"Fig. 11 — PEMA on SockShop @ {WORKLOAD:.0f} rps "
            f"(optimum total CPU {optimum:.2f}; paper: 8.8, SLO 250 ms)",
        )
        + "\n\n"
        + format_table(
            ["exploration", "settled_cpu", "settled/optimum", "violations"],
            summary,
            title="Convergence summary",
        ),
    )
    for label, result in results.items():
        # Walks down from the generous start...
        assert result.settled_total() < result.total_cpu[0] * 0.7
        # ...to near the optimum (paper: both settings converge)...
        assert result.settled_total() / optimum < 1.35
        # ...with only a few unintentional SLO violations.
        assert result.violation_count() <= 12
