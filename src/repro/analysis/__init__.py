"""Bottleneck-classification analysis (paper §3.2 and Table 1)."""

from repro.analysis.bottleneck import (
    TABLE1_SCENARIOS,
    ScenarioResult,
    run_scenario,
    table1,
)
from repro.analysis.dataset import (
    BottleneckDataset,
    generate_dataset,
    generate_dataset_des,
)
from repro.analysis.features import FEATURE_NAMES, FEATURE_SUBSETS, service_features
from repro.analysis.logistic import LogisticRegression
from repro.analysis.tree import DecisionTreeClassifier

__all__ = [
    "DecisionTreeClassifier",
    "LogisticRegression",
    "BottleneckDataset",
    "generate_dataset",
    "generate_dataset_des",
    "FEATURE_NAMES",
    "FEATURE_SUBSETS",
    "service_features",
    "TABLE1_SCENARIOS",
    "ScenarioResult",
    "run_scenario",
    "table1",
]
