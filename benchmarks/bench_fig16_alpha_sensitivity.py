"""Fig. 16 — sensitivity to α (β = 0.3).

Paper: small α is too aggressive — many SLO violations force reverts to
inefficient allocations; large α slows PEMA down prematurely with few
violations but sub-optimal resource.  Both extremes yield worse resource
efficiency than the middle; violations decrease monotonically-ish with α.

The 2 apps x 5 α x 3 seeds sweep is
``benchmarks/grids/fig16_alpha_sensitivity.json``.
"""

from __future__ import annotations

import numpy as np

from benchmarks._grids import figure_optimum, run_figure_grid
from benchmarks._report import emit
from repro.bench import format_table

def run_fig16():
    run = run_figure_grid("fig16_alpha_sensitivity")
    # Group the α curve of each (app, workload) point by its grid
    # coordinate (robust to grid-file edits: axis sizes aren't hard-coded).
    groups: dict[str, list] = {}
    for cell, artifact in run:
        groups.setdefault(cell.coords["cell"], []).append((cell, artifact))
    rows = []
    curves: dict[str, dict[str, list[float]]] = {}
    for group in groups.values():
        app_name = group[0][0].spec.app
        wl = group[0][0].spec.workload.params["rps"]
        opt = figure_optimum(app_name, wl)
        res_norm, viols = [], []
        for cell, artifact in group:
            alpha = cell.spec.autoscaler.params["alpha"]
            totals = [r.settled_total() for r in artifact.results]
            violations = [r.violation_rate() * 100 for r in artifact.results]
            res_norm.append(float(np.mean(totals)) / opt)
            viols.append(float(np.mean(violations)))
            rows.append(
                [
                    app_name,
                    alpha,
                    round(res_norm[-1], 2),
                    round(viols[-1], 1),
                ]
            )
        curves[app_name] = {"resource": res_norm, "violations": viols}
    return rows, curves


def test_fig16_alpha_sensitivity(benchmark):
    rows, curves = benchmark.pedantic(run_fig16, rounds=1, iterations=1)
    emit(
        "fig16_alpha_sensitivity",
        format_table(
            ["app", "alpha", "resource/optimum", "slo_violations_%"],
            rows,
            title="Fig. 16 — α sweep at β=0.3 (paper: extremes are "
            "sub-optimal; violations fall as α grows)",
        ),
    )
    for app_name, c in curves.items():
        res = c["resource"]
        vio = c["violations"]
        # Aggressive extreme (α=0.1) violates far more than conservative.
        assert vio[0] > vio[-1], app_name
        # The middle does at least as well as the aggressive extreme.
        assert min(res[1:4]) <= res[0] + 0.05, app_name
