"""Chunked, cache-aware sweep execution.

``run_sweep_cached`` is the resumable counterpart of
:func:`repro.experiments.run_sweep`: it expands specs to (spec, repeat)
unit tasks, satisfies whatever it can from a :class:`SweepStore`, and fans
the remainder out over processes in bounded chunks — each chunk's results
are persisted and reported through a progress callback as soon as the
chunk lands, instead of one giant end-of-run gather.  Killing a sweep
between chunks therefore loses at most one chunk of work, and re-running
with the same store recomputes only the units that never completed.

Every unit rebuilds its components from the serialized spec whether it
runs inline, in a worker, or comes back from the cache (results round-trip
losslessly through JSON), so serial, parallel, cold, and resumed runs all
produce byte-identical artifacts.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Iterable, Sequence

from repro.bench.parallel import run_parallel
from repro.experiments.artifact import ExperimentArtifact
from repro.experiments.runner import _run_unit_worker, optimum_store
from repro.experiments.spec import ExperimentSpec
from repro.metrics.export import loop_result_from_dict
from repro.sweeps.grid import SweepCell, SweepGrid
from repro.sweeps.store import SweepStore

__all__ = [
    "SweepProgress",
    "SweepReport",
    "GridRun",
    "run_sweep_cached",
    "run_grid",
]

OnProgress = Callable[["SweepProgress"], None]


@dataclass(frozen=True)
class SweepProgress:
    """A snapshot delivered after the cache scan and after every chunk."""

    total: int
    completed: int
    cached: int
    computed: int
    chunk: int
    n_chunks: int

    @property
    def done(self) -> bool:
        return self.completed >= self.total


@dataclass
class SweepReport:
    """What one ``run_sweep_cached`` call did (for logs and CI trends)."""

    specs: int
    units: int
    cache_hits: int
    computed: int
    chunks: int
    seconds: float

    @property
    def units_per_sec(self) -> float:
        return self.units / self.seconds if self.seconds > 0 else 0.0

    def to_dict(self) -> dict[str, float | int]:
        return {
            "specs": self.specs,
            "units": self.units,
            "cache_hits": self.cache_hits,
            "computed": self.computed,
            "chunks": self.chunks,
            "seconds": self.seconds,
            "units_per_sec": self.units_per_sec,
        }


def _chunked(items: Sequence, size: int) -> Iterable[Sequence]:
    for start in range(0, len(items), size):
        yield items[start : start + size]


def run_sweep_cached(
    specs: Sequence[ExperimentSpec] | Iterable[ExperimentSpec],
    *,
    store: SweepStore | None = None,
    reuse: bool = True,
    parallel: int = 1,
    chunk_size: int | None = None,
    on_progress: OnProgress | None = None,
) -> tuple[list[ExperimentArtifact], SweepReport]:
    """Run every (spec, repeat) unit, reusing and filling ``store``.

    ``reuse=False`` ignores existing entries (a refresh run) but still
    persists fresh results.  ``chunk_size`` bounds how much work is in
    flight between persistence points; the default keeps every worker busy
    without batching the whole sweep into one gather.
    """
    start_time = perf_counter()
    specs = list(specs)
    if parallel < 1:
        raise ValueError("parallel must be >= 1")
    if chunk_size is None:
        chunk_size = max(parallel, 1) * 4
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")

    tasks = [
        (spec_index, spec, repeat)
        for spec_index, spec in enumerate(specs)
        for repeat in range(spec.repeats)
    ]
    results: dict[tuple[int, int], dict] = {}
    pending: list[tuple[int, ExperimentSpec, int]] = []
    cached = 0
    for spec_index, spec, repeat in tasks:
        payload = (
            store.get_result(spec, repeat) if store and reuse else None
        )
        if payload is not None:
            results[(spec_index, repeat)] = payload
            cached += 1
        else:
            pending.append((spec_index, spec, repeat))

    chunks = list(_chunked(pending, chunk_size))
    if on_progress is not None:
        on_progress(
            SweepProgress(
                total=len(tasks),
                completed=cached,
                cached=cached,
                computed=0,
                chunk=0,
                n_chunks=len(chunks),
            )
        )
    computed = 0
    # One long-lived pool for the whole sweep: workers are spawned once,
    # not once per chunk (chunking only bounds the persistence interval).
    pool = (
        ProcessPoolExecutor(max_workers=min(parallel, len(pending)))
        if parallel > 1 and len(pending) > 1
        else None
    )
    try:
        for chunk_index, chunk in enumerate(chunks, start=1):
            raw = run_parallel(
                _run_unit_worker,
                [
                    dict(spec_data=spec.to_dict(), repeat=repeat)
                    for _, spec, repeat in chunk
                ],
                max_workers=parallel,
                pool=pool,
            )
            for (spec_index, spec, repeat), payload in zip(chunk, raw):
                if store is not None:
                    store.put_result(spec, repeat, payload)
                results[(spec_index, repeat)] = payload
                computed += 1
            if on_progress is not None:
                on_progress(
                    SweepProgress(
                        total=len(tasks),
                        completed=cached + computed,
                        cached=cached,
                        computed=computed,
                        chunk=chunk_index,
                        n_chunks=len(chunks),
                    )
                )
    finally:
        if pool is not None:
            pool.shutdown()

    artifacts = [
        ExperimentArtifact(
            spec=spec,
            results=tuple(
                loop_result_from_dict(results[(spec_index, repeat)])
                for repeat in range(spec.repeats)
            ),
        )
        for spec_index, spec in enumerate(specs)
    ]
    report = SweepReport(
        specs=len(specs),
        units=len(tasks),
        cache_hits=cached,
        computed=computed,
        chunks=len(chunks),
        seconds=perf_counter() - start_time,
    )
    return artifacts, report


@dataclass(frozen=True)
class GridRun:
    """An expanded grid together with one artifact per cell."""

    grid: SweepGrid
    cells: tuple[SweepCell, ...]
    artifacts: tuple[ExperimentArtifact, ...]
    report: SweepReport

    def __iter__(self):
        return iter(zip(self.cells, self.artifacts))

    def artifact(self, **coords: str) -> ExperimentArtifact:
        """The artifact of the unique cell matching the given coordinates."""
        matches = [
            artifact
            for cell, artifact in zip(self.cells, self.artifacts)
            if all(cell.coords.get(k) == v for k, v in coords.items())
        ]
        if len(matches) != 1:
            raise LookupError(
                f"{len(matches)} cells match {coords} in grid "
                f"{self.grid.name!r}"
            )
        return matches[0]


def run_grid(
    grid: SweepGrid,
    *,
    store: SweepStore | None = None,
    reuse: bool = True,
    parallel: int = 1,
    chunk_size: int | None = None,
    on_progress: OnProgress | None = None,
    cells: Sequence[SweepCell] | None = None,
) -> GridRun:
    """Expand ``grid`` and execute every cell through the cached scheduler.

    While the sweep runs, ``store`` also backs the optimum-search cache, so
    OPTM baselines computed alongside grid cells persist across runs too.
    Callers that already expanded the grid (e.g. to validate or count it)
    pass their ``cells`` list to avoid re-expanding.
    """
    cells = tuple(grid.cells() if cells is None else cells)
    with optimum_store(store):
        artifacts, report = run_sweep_cached(
            [cell.spec for cell in cells],
            store=store,
            reuse=reuse,
            parallel=parallel,
            chunk_size=chunk_size,
            on_progress=on_progress,
        )
    return GridRun(
        grid=grid, cells=cells, artifacts=tuple(artifacts), report=report
    )
