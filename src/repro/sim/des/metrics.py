"""Measurement window for the DES: latencies + per-service counters."""

from __future__ import annotations

import numpy as np

from repro.sim.des.server import ServiceServer
from repro.sim.types import IntervalMetrics, ServiceMetrics

__all__ = ["MeasurementWindow"]


class MeasurementWindow:
    """Accumulates one observation interval's samples."""

    def __init__(self) -> None:
        self.latencies: list[float] = []
        self.started = 0
        self.completed = 0

    def record_completion(self, latency: float) -> None:
        if latency < 0:
            raise ValueError("negative latency")
        self.latencies.append(latency)
        self.completed += 1

    def build(
        self,
        servers: dict[str, ServiceServer],
        duration: float,
        workload_rps: float,
        *,
        scale_to_interval: float | None = None,
    ) -> IntervalMetrics:
        """Summarize the window into :class:`IntervalMetrics`.

        ``scale_to_interval`` rescales throttle seconds from the simulated
        duration to a nominal monitoring interval so DES output is unit-
        compatible with the analytical engine.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        scale = 1.0 if scale_to_interval is None else scale_to_interval / duration
        services: dict[str, ServiceMetrics] = {}
        total_periods = max(int(round(duration / next(iter(servers.values())).period)), 1) if servers else 1
        # One vectorized fold across services: stack every server's
        # period samples into a zero-padded matrix (idle periods produce
        # no sample events, so the padding makes percentiles reflect the
        # full interval) and take the per-row percentile in one call —
        # ``np.percentile(matrix, 90, axis=1)`` row *i* is bit-identical
        # to ``np.percentile(matrix[i], 90)``.  A server can overrun
        # ``total_periods`` by a boundary period; its row then keeps its
        # own length, so rows are only stacked while they agree.
        server_list = list(servers.values())
        lengths = {
            max(total_periods, len(s.period_samples)) for s in server_list
        }
        if len(lengths) == 1:
            matrix = np.zeros((len(server_list), lengths.pop()))
            for i, server in enumerate(server_list):
                samples = server.period_samples
                matrix[i, : len(samples)] = samples
            p90s = np.percentile(matrix, 90, axis=1)
        else:
            p90s = np.asarray(
                [
                    np.percentile(
                        np.pad(
                            s.period_samples,
                            (0, max(total_periods - len(s.period_samples), 0)),
                        )
                        if s.period_samples
                        else np.zeros(total_periods),
                        90,
                    )
                    for s in server_list
                ]
            )
        for i, server in enumerate(server_list):
            usage_cores = server.usage_seconds / duration
            services[server.name] = ServiceMetrics(
                utilization=min(usage_cores / server.alloc, 1.0),
                throttle_seconds=server.throttle_seconds * scale,
                usage_cores=usage_cores,
                usage_p90_cores=min(float(p90s[i]), server.alloc),
            )
        if self.latencies:
            arr = np.asarray(self.latencies)
            p95 = float(np.percentile(arr, 95))
            mean = float(arr.mean())
        else:
            p95 = mean = 0.0
        return IntervalMetrics(
            latency_p95=p95,
            workload_rps=workload_rps,
            services=services,
            latency_mean=mean,
            completed_requests=self.completed,
        )
