"""High-resolution violation mitigation — §6 of the paper, implemented.

The paper's stated limitation: when PEMA causes an unintentional SLO
violation it only notices at the next control interval, so the application
suffers for the *whole* interval (e.g. two minutes).  The proposed fix —
"higher resolution performance monitoring (e.g., within 10 seconds),
catching the SLO violations early, and rolling back configuration to
mitigate it" — is what :class:`FastReactionLoop` does:

* each control interval is observed as ``monitor_splits`` sub-intervals;
* the moment a sub-interval violates the SLO, the controller's violation
  path runs immediately (taint + rollback) and the restored allocation
  serves the rest of the interval;
* if the interval completes cleanly, the aggregated interval metrics feed
  the regular Algorithm 1 step, exactly like :class:`ControlLoop`.

The result additionally reports *violation exposure*: the fraction of
wall-clock time spent above the SLO, which is what fast mitigation
improves (the number of violating intervals barely changes — their
duration does).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.controller import PEMAController, StepAction
from repro.core.loop import LoopRecord, LoopResult
from repro.metrics.collector import MetricsCollector
from repro.sim.environment import Environment
from repro.sim.types import IntervalMetrics, ServiceMetrics
from repro.workload.trace import WorkloadTrace

__all__ = ["FastReactionLoop", "FastLoopResult"]


@dataclass
class FastLoopResult(LoopResult):
    """Loop history plus sub-interval violation accounting."""

    sub_violations: int = 0
    """Sub-intervals observed above the SLO."""

    sub_intervals: int = 0
    """Total sub-intervals observed."""

    mitigations: int = 0
    """Mid-interval rollbacks triggered by the fast monitor."""

    def violation_exposure(self) -> float:
        """Fraction of wall-clock time spent above the SLO."""
        if self.sub_intervals == 0:
            return 0.0
        return self.sub_violations / self.sub_intervals


def _aggregate(subs: list[IntervalMetrics]) -> IntervalMetrics:
    """Combine sub-interval observations into one interval observation.

    p95 uses the worst sub-interval (a 2-minute p95 is dominated by its
    worst stretch); utilizations/usages average; throttle seconds add up.
    """
    if not subs:
        raise ValueError("nothing to aggregate")
    names = list(subs[0].services)
    services = {}
    for name in names:
        utils = [s.services[name].utilization for s in subs]
        usages = [s.services[name].usage_cores for s in subs]
        p90s = [s.services[name].usage_p90_cores for s in subs]
        throttles = [s.services[name].throttle_seconds for s in subs]
        services[name] = ServiceMetrics(
            utilization=float(np.mean(utils)),
            throttle_seconds=float(np.sum(throttles)),
            usage_cores=float(np.mean(usages)),
            usage_p90_cores=float(np.max(p90s)),
        )
    return IntervalMetrics(
        latency_p95=float(np.max([s.latency_p95 for s in subs])),
        workload_rps=float(np.mean([s.workload_rps for s in subs])),
        services=services,
        latency_mean=float(np.mean([s.latency_mean for s in subs])),
        completed_requests=int(np.sum([s.completed_requests for s in subs])),
    )


class FastReactionLoop:
    """Control loop with sub-interval violation monitoring."""

    def __init__(
        self,
        environment: Environment,
        controller: PEMAController,
        workload: WorkloadTrace,
        *,
        interval: float = 120.0,
        monitor_splits: int = 12,
        collector: MetricsCollector | None = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        if monitor_splits < 1:
            raise ValueError("monitor_splits must be >= 1")
        self.environment = environment
        self.controller = controller
        self.workload = workload
        self.interval = interval
        self.monitor_splits = monitor_splits
        self.collector = collector

    def run(
        self,
        n_steps: int,
        on_step: Callable[[int, "FastReactionLoop"], None] | None = None,
    ) -> FastLoopResult:
        if n_steps < 1:
            raise ValueError("n_steps must be >= 1")
        result = FastLoopResult()
        allocation = self.controller.allocation
        sub_len = self.interval / self.monitor_splits
        for step in range(n_steps):
            if on_step is not None:
                on_step(step, self)
            t = step * self.interval
            rps = self.workload.rate(t)
            slo = self.controller.slo
            subs: list[IntervalMetrics] = []
            interval_alloc = allocation
            mitigated = False
            for k in range(self.monitor_splits):
                sub = self.environment.observe(allocation, rps, sub_len)
                subs.append(sub)
                result.sub_intervals += 1
                if sub.latency_p95 > slo:
                    result.sub_violations += 1
                    if not mitigated:
                        # Early mitigation: run the violation path now.
                        outcome = self.controller.step(sub)
                        assert outcome.action is StepAction.ROLLBACK
                        allocation = outcome.allocation
                        result.mitigations += 1
                        mitigated = True
            aggregated = _aggregate(subs)
            if self.collector is not None:
                self.collector.collect(t, interval_alloc, aggregated)
            result.records.append(
                LoopRecord(
                    step=step,
                    time=t,
                    workload=rps,
                    response=aggregated.latency_p95,
                    total_cpu=interval_alloc.total(),
                    violated=aggregated.latency_p95 > slo,
                    slo=slo,
                    allocation=interval_alloc,
                )
            )
            if not mitigated:
                allocation = self.controller.step(aggregated).allocation
        return result
