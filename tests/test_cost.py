"""Cost-aware objective (paper §3 generalization)."""

import numpy as np
import pytest

from repro.core import (
    ControlLoop,
    CostModel,
    PEMAConfig,
    PEMAController,
    cost_weighted_probabilities,
)
from repro.sim import AnalyticalEngine, Allocation
from repro.workload import ConstantWorkload
from tests.conftest import make_metrics


class TestCostModel:
    def test_cost(self):
        model = CostModel({"a": 1.0, "b": 3.0})
        alloc = Allocation({"a": 2.0, "b": 1.0})
        assert model.cost(alloc) == pytest.approx(2.0 + 3.0)

    def test_uniform(self):
        model = CostModel.uniform(("a", "b"), price=2.0)
        assert model.price("a") == 2.0
        assert model.cost(Allocation({"a": 1.0, "b": 1.0})) == pytest.approx(4.0)

    def test_missing_price(self):
        model = CostModel({"a": 1.0})
        with pytest.raises(KeyError):
            model.cost(Allocation({"a": 1.0, "b": 1.0}))

    def test_validation(self):
        with pytest.raises(ValueError):
            CostModel({})
        with pytest.raises(ValueError):
            CostModel({"a": 0.0})


class TestCostWeighting:
    def test_expensive_keeps_probability(self):
        model = CostModel({"cheap": 1.0, "pricey": 10.0})
        probs = {"cheap": 1.0, "pricey": 1.0}
        out = cost_weighted_probabilities(probs, model, strength=0.75)
        assert out["pricey"] == pytest.approx(1.0)
        assert out["cheap"] == pytest.approx(0.25 + 0.75 * 0.1)

    def test_uniform_prices_no_tilt(self):
        model = CostModel.uniform(("a", "b"))
        probs = {"a": 0.6, "b": 0.4}
        out = cost_weighted_probabilities(probs, model, strength=0.75)
        assert out == pytest.approx(probs)

    def test_empty(self):
        assert cost_weighted_probabilities({}, CostModel({"a": 1.0})) == {}

    def test_strength_validation(self):
        with pytest.raises(ValueError):
            cost_weighted_probabilities(
                {"a": 1.0}, CostModel({"a": 1.0}), strength=1.5
            )


class TestCostAwareController:
    SERVICES = ("front", "logic", "db", "cache")

    def test_controller_validates_coverage(self):
        with pytest.raises(ValueError):
            PEMAController(
                self.SERVICES,
                0.25,
                Allocation({s: 2.0 for s in self.SERVICES}),
                cost_model=CostModel({"front": 1.0}),
            )

    def test_reduction_biased_toward_expensive(self):
        model = CostModel(
            {"front": 10.0, "logic": 0.5, "db": 0.5, "cache": 0.5}
        )
        c = PEMAController(
            self.SERVICES,
            0.25,
            Allocation({s: 2.0 for s in self.SERVICES}),
            PEMAConfig(explore_a=0.0, explore_b=0.0),
            seed=0,
            cost_model=model,
        )
        picks = {s: 0 for s in self.SERVICES}
        for _ in range(80):
            result = c.step(make_metrics(0.050))
            for t in result.targets:
                picks[t] += 1
        # The expensive frontend is reduced much more often than any
        # individual cheap service.
        assert picks["front"] > max(picks["logic"], picks["db"], picks["cache"])

    def test_cost_aware_run_cuts_spend(self, tiny_app):
        """End to end: with a pricey service, cost-aware PEMA ends with a
        lower bill than cost-blind PEMA (same SLO machinery)."""
        prices = {"front": 8.0, "logic": 1.0, "db": 1.0, "cache": 1.0}
        model = CostModel(prices)
        bills = {}
        for label, cm in (("aware", model), ("blind", None)):
            engine = AnalyticalEngine(tiny_app, seed=5)
            controller = PEMAController(
                tiny_app.service_names,
                tiny_app.slo,
                tiny_app.generous_allocation(100.0),
                PEMAConfig(explore_a=0.0, explore_b=0.0),
                seed=6,
                cost_model=cm,
            )
            result = ControlLoop(
                engine, controller, ConstantWorkload(100.0)
            ).run(40)
            ok = [r.allocation for r in result.records if not r.violated]
            bills[label] = min(model.cost(a) for a in ok)
        assert bills["aware"] <= bills["blind"] * 1.05

    def test_fork_carries_cost_model(self):
        model = CostModel.uniform(self.SERVICES)
        c = PEMAController(
            self.SERVICES,
            0.25,
            Allocation({s: 2.0 for s in self.SERVICES}),
            cost_model=model,
        )
        child = c.fork(seed=1)
        assert child.cost_model is model
