"""CFS-quota server mechanics."""

import pytest

from repro.sim.des.server import CpuJob, ServiceServer


def server(alloc=1.0) -> ServiceServer:
    return ServiceServer("svc", alloc_cores=alloc, period=0.1)


class TestAdvance:
    def test_work_progresses_at_rate_one(self):
        s = server(alloc=2.0)
        s.add_job(CpuJob(1, remaining=0.05), now=0.0)
        s.advance(0.02)
        assert s.jobs[1].remaining == pytest.approx(0.03)
        assert s.usage_seconds == pytest.approx(0.02)

    def test_multiple_jobs_consume_quota_faster(self):
        s = server(alloc=1.0)  # quota 0.1 per period
        s.add_job(CpuJob(1, remaining=1.0), now=0.0)
        s.add_job(CpuJob(2, remaining=1.0), now=0.0)
        s.advance(0.03)
        assert s.quota_left == pytest.approx(0.1 - 0.06)

    def test_throttled_jobs_frozen(self):
        s = server(alloc=1.0)
        s.add_job(CpuJob(1, remaining=1.0), now=0.0)
        s.set_throttled()
        s.advance(0.05)
        assert s.jobs[1].remaining == pytest.approx(1.0)
        assert s.throttle_seconds == pytest.approx(0.05)

    def test_advance_backwards_rejected(self):
        s = server()
        s.advance(1.0)
        with pytest.raises(ValueError):
            s.advance(0.5)


class TestQuota:
    def test_time_to_quota_exhaust(self):
        s = server(alloc=1.0)  # quota 0.1
        s.add_job(CpuJob(1, remaining=5.0), now=0.0)
        s.add_job(CpuJob(2, remaining=5.0), now=0.0)
        assert s.time_to_quota_exhaust() == pytest.approx(0.05)

    def test_no_exhaust_when_idle_or_throttled(self):
        s = server()
        assert s.time_to_quota_exhaust() is None
        s.add_job(CpuJob(1, remaining=1.0), now=0.0)
        s.set_throttled()
        assert s.time_to_quota_exhaust() is None

    def test_new_period_refills(self):
        s = server(alloc=1.0)
        s.add_job(CpuJob(1, remaining=5.0), now=0.0)
        s.advance(0.08)
        s.set_throttled()
        s.advance(0.1)
        s.new_period(0.1)
        assert s.quota_left == pytest.approx(0.1)
        assert not s.throttled
        assert s.period_samples[-1] == pytest.approx(0.8)  # 0.08s / 0.1s

    def test_sync_period_after_idle_gap(self):
        s = server(alloc=1.0)
        s.add_job(CpuJob(1, remaining=0.01), now=0.0)
        s.advance(0.01)
        s.remove_job(1)
        s.advance(0.55)  # idle across 5 boundaries
        s.add_job(CpuJob(2, remaining=0.01), now=0.55)
        assert s.quota_left == pytest.approx(0.1)
        assert s.period_index == 5


class TestCompletionHorizon:
    def test_next_completion_picks_min(self):
        s = server(alloc=4.0)
        s.add_job(CpuJob(1, remaining=0.5), now=0.0)
        s.add_job(CpuJob(2, remaining=0.2), now=0.0)
        job_id, dt = s.next_completion()
        assert job_id == 2
        assert dt == pytest.approx(0.2)

    def test_none_when_throttled(self):
        s = server()
        s.add_job(CpuJob(1, remaining=0.5), now=0.0)
        s.set_throttled()
        assert s.next_completion() is None

    def test_epoch_bumps_on_changes(self):
        s = server()
        e0 = s.epoch
        s.add_job(CpuJob(1, remaining=0.5), now=0.0)
        assert s.epoch > e0
        e1 = s.epoch
        s.remove_job(1)
        assert s.epoch > e1

    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceServer("s", alloc_cores=0.0)
        with pytest.raises(ValueError):
            ServiceServer("s", alloc_cores=1.0, period=0.0)

    def test_reset_accumulators(self):
        s = server()
        s.add_job(CpuJob(1, remaining=1.0), now=0.0)
        s.advance(0.05)
        s.reset_accumulators()
        assert s.usage_seconds == 0.0
        assert s.throttle_seconds == 0.0
        assert s.period_samples == []
