"""Content-addressed on-disk cache for sweep results.

Every cache entry is keyed by the SHA-256 of a canonical JSON encoding of
*what produced it* — for a unit result, the full serialized spec plus the
repeat index — so a cache hit is exactly "this computation already ran":
specs that differ in any field hash to different entries, and entries are
shared between figures that sweep overlapping (app, workload, seed) points.

Robustness properties the scheduler relies on:

* **atomic writes** — entries are written to a temp file in the target
  directory and ``os.replace``d into place, so a killed sweep never leaves
  a half-written entry and concurrent writers of the same key can only
  produce one complete file (last writer wins, both wrote the same bytes);
* **corruption-tolerant loads** — a truncated/garbled/foreign file is a
  cache miss (counted in :attr:`SweepStore.stats`), never an exception, and
  the recomputed result simply overwrites it;
* **self-describing entries** — each file stores its own key object and is
  verified against the requested key on load, so a hash collision or a
  misplaced file cannot alias a different computation.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, TYPE_CHECKING

from repro.obs.metrics import default_registry

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.spec import ExperimentSpec

__all__ = [
    "JsonDirectoryStore",
    "Lease",
    "LeaseNamespace",
    "SweepStore",
    "StoreStats",
    "canonical_key",
]

_FORMAT = 1

#: Queue state (leases, done markers, worker reports) lives under this
#: directory inside a store root.  Entry files live under two-hex-char
#: shards (``ab/<digest>.json``), so the queue namespace can never
#: collide with — or be globbed up as — a cache entry.
QUEUE_DIRNAME = "_queue"

# Process-global mirrors of the per-handle StoreStats counters: store
# handles come and go (one per sweep, per service state dir), the
# registry series aggregate across all of them for the /metrics scrape.
_REG = default_registry()
_STORE_HITS = _REG.counter(
    "repro_store_hits_total", "Result-store cache hits (all handles)."
)
_STORE_MISSES = _REG.counter(
    "repro_store_misses_total", "Result-store cache misses (all handles)."
)
_STORE_WRITES = _REG.counter(
    "repro_store_writes_total", "Result-store entries written (all handles)."
)
_STORE_CORRUPT = _REG.counter(
    "repro_store_corrupt_total",
    "Corrupt/foreign result-store entries treated as misses.",
)


def canonical_key(key_obj: Any) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of ``key_obj``."""
    encoded = json.dumps(
        key_obj, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


@dataclass
class StoreStats:
    """Counters for one store handle (not persisted)."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0

    def to_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt": self.corrupt,
        }


@dataclass
class JsonDirectoryStore:
    """A directory of content-addressed JSON entries (the raw backend).

    Knows nothing about experiments: any JSON-encodable key object maps
    to an atomic, corruption-tolerant file.  :class:`SweepStore` layers
    the experiment-aware key constructors on top; the always-on service's
    state store (:mod:`repro.service.state`) uses this class directly as
    its ``directory`` backend, so both persistence planes share one
    on-disk format and one robustness contract.
    """

    root: Path
    stats: StoreStats = field(default_factory=StoreStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key_obj: Any) -> Path:
        digest = canonical_key(key_obj)
        return self.root / digest[:2] / f"{digest}.json"

    # -- raw payload access ------------------------------------------------------
    def get_raw(self, key_obj: Any) -> Any | None:
        """The stored payload for ``key_obj``, or None on miss/corruption."""
        path = self.path_for(key_obj)
        try:
            entry = json.loads(path.read_text())
        except FileNotFoundError:
            self.stats.misses += 1
            _STORE_MISSES.inc()
            return None
        except (OSError, UnicodeDecodeError, json.JSONDecodeError):
            self.stats.corrupt += 1
            self.stats.misses += 1
            _STORE_CORRUPT.inc()
            _STORE_MISSES.inc()
            return None
        # A foreign/garbled-but-valid-JSON file is also just a miss.
        if (
            not isinstance(entry, dict)
            or "payload" not in entry
            or canonical_key(entry.get("key")) != canonical_key(key_obj)
        ):
            self.stats.corrupt += 1
            self.stats.misses += 1
            _STORE_CORRUPT.inc()
            _STORE_MISSES.inc()
            return None
        self.stats.hits += 1
        _STORE_HITS.inc()
        return entry["payload"]

    def put_raw(self, key_obj: Any, payload: Any) -> Path:
        """Atomically persist ``payload`` under ``key_obj``."""
        path = self.path_for(key_obj)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"format": _FORMAT, "key": key_obj, "payload": payload}
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{path.stem[:16]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(entry, fh, sort_keys=True, allow_nan=False)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        _STORE_WRITES.inc()
        return path

    # -- maintenance -------------------------------------------------------------
    def entry_paths(self) -> list[Path]:
        return sorted(self.root.glob("??/*.json"))

    def __len__(self) -> int:
        return len(self.entry_paths())

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        paths = self.entry_paths()
        for path in paths:
            try:
                path.unlink()
            except FileNotFoundError:
                pass
        return len(paths)

    # -- queue namespace ---------------------------------------------------------
    def queue_root(self, plan_id: str) -> Path:
        """The coordination directory of one distributed plan.

        Holds ``leases/``, ``done/`` and ``workers/`` subdirectories —
        the claim state :mod:`repro.sweeps.distributed` layers over the
        cache entries.  Disjoint from the entry shards by construction.
        """
        return self.root / QUEUE_DIRNAME / plan_id


def _write_json_replace(path: Path, payload: Any) -> None:
    """Atomically (re)write ``path`` with a JSON payload.

    Same temp-file-in-target-directory + ``os.replace`` discipline as
    cache entries: a reader never observes a half-written file, and
    concurrent writers leave exactly one winner's bytes.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.stem[:16]}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh, sort_keys=True, allow_nan=False)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


@dataclass(frozen=True)
class Lease:
    """One worker's claim on one task: who, until when, under which token.

    The ``token`` is what makes ownership checkable: every acquisition —
    fresh or stolen — mints a new one, and renew/release only act when
    the on-disk lease still carries the caller's token.
    """

    task_id: str
    worker: str
    token: str
    expires: float
    acquired: float
    renewals: int = 0
    stolen_from: str | None = None

    @property
    def stolen(self) -> bool:
        return self.stolen_from is not None

    def to_dict(self) -> dict[str, Any]:
        return {
            "task": self.task_id,
            "worker": self.worker,
            "token": self.token,
            "expires": self.expires,
            "acquired": self.acquired,
            "renewals": self.renewals,
            "stolen_from": self.stolen_from,
        }


@dataclass
class LeaseNamespace:
    """Atomic lease files over a shared directory (one file per task).

    The claim protocol needs only two filesystem guarantees — exclusive
    create (``O_CREAT|O_EXCL``) and atomic rename — both of which hold on
    local filesystems and NFSv4-style shared mounts:

    * **fresh claim** — exclusively create ``<task_id>.json``; losing the
      race means another worker holds the task;
    * **takeover** — an *expired* (or corrupt-and-stale) lease is replaced
      via temp-file + ``os.replace``, then re-read: only the worker whose
      token survived the rename proceeds;
    * **renewal/release** — read-verify the token first, so a worker that
      lost its lease to a steal cannot silently extend or delete the
      thief's claim.

    Leases are an *optimization*, not a correctness mechanism: in the
    worst interleavings two workers may both believe they own a task and
    compute it twice, but every result lands in the content-addressed
    store under the same key with identical bytes, so duplicated work can
    never corrupt a sweep.  Expiry compares wall-clock timestamps across
    workers, so multi-host fleets need loosely synchronized clocks (NTP
    drift ≪ the TTL).
    """

    root: Path

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, task_id: str) -> Path:
        return self.root / f"{task_id}.json"

    def read(self, task_id: str) -> dict[str, Any] | None:
        """The current lease record, or None (absent or unreadable)."""
        try:
            data = json.loads(self.path_for(task_id).read_text())
        except (OSError, UnicodeDecodeError, json.JSONDecodeError):
            return None
        return data if isinstance(data, dict) else None

    def _fresh_by_mtime(self, task_id: str, ttl: float, now: float) -> bool:
        """Is an unreadable lease file young enough to be an in-flight write?

        A reader can catch a lease between exclusive create and content
        write; treating every unreadable file as stale would steal claims
        that are microseconds old.  An unreadable file older than one TTL
        really is garbage.
        """
        try:
            mtime = self.path_for(task_id).stat().st_mtime
        except OSError:
            return False
        return mtime > now - max(ttl, 1e-9)

    def acquire(
        self,
        task_id: str,
        worker: str,
        ttl: float,
        *,
        now: float | None = None,
    ) -> Lease | None:
        """Try to claim ``task_id``; returns the lease or None if held.

        A lease whose expiry has passed is taken over (``Lease.stolen``
        is set on the result).  ``ttl`` ≤ 0 makes every lease instantly
        stale — useful in tests, never in production.
        """
        now = time.time() if now is None else now
        lease = Lease(
            task_id=task_id,
            worker=worker,
            token=uuid.uuid4().hex,
            expires=now + ttl,
            acquired=now,
        )
        path = self.path_for(task_id)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            current = self.read(task_id)
            if current is not None:
                if float(current.get("expires", 0.0)) > now:
                    return None  # live claim by someone else
                holder = current.get("worker")
            else:
                if self._fresh_by_mtime(task_id, ttl, now):
                    return None  # probably an in-flight fresh claim
                holder = None
            lease = Lease(**{**lease.__dict__, "stolen_from": holder})
            _write_json_replace(path, lease.to_dict())
            after = self.read(task_id)
            if after is not None and after.get("token") == lease.token:
                return lease
            return None  # lost the takeover race to another stealer
        with os.fdopen(fd, "w") as fh:
            json.dump(lease.to_dict(), fh, sort_keys=True, allow_nan=False)
            fh.flush()
            os.fsync(fh.fileno())
        return lease

    def renew(
        self, lease: Lease, ttl: float, *, now: float | None = None
    ) -> Lease | None:
        """Extend a held lease; returns the renewed lease or None if lost."""
        now = time.time() if now is None else now
        current = self.read(lease.task_id)
        if current is None or current.get("token") != lease.token:
            return None
        renewed = Lease(
            **{
                **lease.__dict__,
                "expires": now + ttl,
                "renewals": lease.renewals + 1,
            }
        )
        _write_json_replace(self.path_for(lease.task_id), renewed.to_dict())
        return renewed

    def release(self, lease: Lease) -> bool:
        """Drop a held lease; returns False if it was no longer ours."""
        current = self.read(lease.task_id)
        if current is None or current.get("token") != lease.token:
            return False
        try:
            self.path_for(lease.task_id).unlink()
        except FileNotFoundError:
            pass
        return True


@dataclass
class SweepStore(JsonDirectoryStore):
    """A directory of content-addressed JSON cache entries."""

    # -- key construction --------------------------------------------------------
    @staticmethod
    def unit_key(spec: "ExperimentSpec", repeat: int) -> dict[str, Any]:
        """The cache key of one (spec, repeat) unit result.

        Fields that don't influence the unit's computation are excluded
        so grids sweeping the same physical point share entries:
        ``name`` is cosmetic, and ``repeats`` only bounds the repeat
        index (repeat ``r`` is fully determined by ``seed + r``), so a
        3-repeat and a 5-repeat sweep of the same base share their
        common units.
        """
        spec_data = spec.to_dict()
        spec_data.pop("name", None)
        spec_data.pop("repeats", None)
        return {
            "kind": "unit",
            "format": _FORMAT,
            "spec": spec_data,
            "repeat": int(repeat),
        }

    @staticmethod
    def optimum_key(
        app: str, workload: float, restarts: int
    ) -> dict[str, Any]:
        """The cache key of one OPTM search (see ``optimum_total``)."""
        return {
            "kind": "optimum",
            "format": _FORMAT,
            "app": app,
            "workload": round(float(workload), 6),
            "restarts": int(restarts),
        }

    # -- unit results ------------------------------------------------------------
    def get_result(
        self, spec: "ExperimentSpec", repeat: int
    ) -> dict[str, Any] | None:
        """A stored unit run history (``loop_result_to_dict`` form) or None."""
        payload = self.get_raw(self.unit_key(spec, repeat))
        if payload is not None and not (
            isinstance(payload, dict) and isinstance(payload.get("records"), list)
        ):
            # Structurally wrong payload: treat as corruption, recompute.
            # (The global counters are monotonic, so only the per-handle
            # hit tally is rolled back.)
            self.stats.hits -= 1
            self.stats.misses += 1
            self.stats.corrupt += 1
            _STORE_CORRUPT.inc()
            _STORE_MISSES.inc()
            return None
        return payload

    def put_result(
        self, spec: "ExperimentSpec", repeat: int, result: dict[str, Any]
    ) -> Path:
        return self.put_raw(self.unit_key(spec, repeat), result)
