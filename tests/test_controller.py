"""PEMA controller: Algorithm 1 step semantics."""

import numpy as np
import pytest

from repro.core import PEMAConfig, PEMAController, StepAction
from repro.sim.types import Allocation
from tests.conftest import make_metrics

SERVICES = ("front", "logic", "db", "cache")
SLO = 0.250


def controller(
    config: PEMAConfig | None = None, seed: int = 0, cpu: float = 2.0
) -> PEMAController:
    return PEMAController(
        SERVICES,
        SLO,
        Allocation({s: cpu for s in SERVICES}),
        config or PEMAConfig(explore_a=0.0, explore_b=0.0),  # deterministic
        seed=seed,
    )


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            PEMAController((), SLO, Allocation({"a": 1.0}))
        with pytest.raises(ValueError):
            PEMAController(("a",), 0.0, Allocation({"a": 1.0}))
        with pytest.raises(ValueError):
            PEMAController(("a", "b"), SLO, Allocation({"a": 1.0}))

    def test_config_high_low_exploration(self):
        assert PEMAConfig.high_exploration().explore_a == 0.10
        assert PEMAConfig.low_exploration().explore_a == 0.05


class TestReduceStep:
    def test_reduces_when_headroom(self):
        c = controller()
        before = c.allocation.total()
        result = c.step(make_metrics(0.100))  # 100ms vs 250ms SLO
        assert result.action is StepAction.REDUCE
        assert result.allocation.total() < before
        assert result.allocation.monotone_le(
            Allocation({s: 2.0 for s in SERVICES})
        )
        assert 0 < result.n_targets <= len(SERVICES)
        assert 0 < result.delta <= c.config.beta

    def test_reduction_is_monotonic_per_step(self):
        """Each REDUCE step only ever shrinks services (the paper's
        monotonic-reduction definition)."""
        c = controller()
        prev = c.allocation
        for _ in range(10):
            result = c.step(make_metrics(0.100))
            if result.action is StepAction.REDUCE:
                assert result.allocation.monotone_le(prev)
            prev = result.allocation

    def test_holds_at_target(self):
        c = controller()
        result = c.step(make_metrics(0.249))  # essentially at the SLO
        assert result.action is StepAction.HOLD
        assert result.allocation.total() == pytest.approx(8.0)

    def test_respects_min_cpu_floor(self):
        cfg = PEMAConfig(explore_a=0.0, explore_b=0.0, min_cpu=0.5)
        c = controller(cfg, cpu=0.6)
        for _ in range(30):
            c.step(make_metrics(0.050))
        assert all(c.allocation[s] >= 0.5 for s in SERVICES)

    def test_newly_throttled_service_not_reduced(self):
        """A service whose throttling exceeds its learned threshold is
        excluded from this step's candidates (Alg. 1 line 8)."""
        c = controller()
        result = c.step(make_metrics(0.100, throttles={"db": 3.0}))
        assert "db" not in result.targets

    def test_growing_throttle_stays_excluded(self):
        """Throttling that keeps growing keeps the service filtered —
        the 'imminent bottleneck' detector."""
        c = controller()
        throttle = 1.0
        for _ in range(8):
            result = c.step(make_metrics(0.100, throttles={"db": throttle}))
            assert "db" not in result.targets
            throttle *= 1.5

    def test_stable_throttle_becomes_safe(self):
        """Once a throttling level was observed on an SLO-satisfying
        interval, it is a learned-safe ceiling and the service is eligible
        again (Eqn. 7 ratchet)."""
        c = controller(seed=3)
        m = make_metrics(0.100, throttles={"db": 3.0})
        c.step(m)  # learns H_th(db) = 3.0
        seen_db = False
        for _ in range(20):
            result = c.step(m)
            seen_db = seen_db or ("db" in result.targets)
        assert seen_db

    def test_reduction_target_override(self):
        """A lower reduction target shrinks the signal (Eqn. 9 plumbing)."""
        c1, c2 = controller(), controller()
        r1 = c1.step(make_metrics(0.100))
        r2 = c2.step(make_metrics(0.100), reduction_target=0.150)
        assert r2.signal < r1.signal

    def test_invalid_reduction_target(self):
        with pytest.raises(ValueError):
            controller().step(make_metrics(0.1), reduction_target=0.0)


class TestRollback:
    def test_rollback_on_violation(self):
        c = controller()
        c.step(make_metrics(0.100))  # logs 8.0-total allocation
        mid = c.allocation
        result = c.step(make_metrics(0.300))  # violation
        assert result.action is StepAction.ROLLBACK
        assert result.violated
        # Rolled back to the only satisfying record: the initial allocation.
        assert result.allocation.total() == pytest.approx(8.0)
        assert c.rhdb.is_tainted(mid)

    def test_rollback_picks_min_total(self):
        c = controller()
        totals = []
        for _ in range(5):
            r = c.step(make_metrics(0.100))
            totals.append(r.allocation.total())
        result = c.step(make_metrics(0.300))
        assert result.action is StepAction.ROLLBACK
        # min over *logged* allocations excluding the tainted last one.
        assert result.allocation.total() == pytest.approx(min(totals[:-1]))

    def test_first_interval_violation_inflates(self):
        c = controller()
        before = c.allocation.total()
        result = c.step(make_metrics(0.400))
        assert result.action is StepAction.ROLLBACK
        assert result.allocation.total() == pytest.approx(before * 1.25)

    def test_thresholds_not_ratcheted_on_violation(self):
        c = controller()
        c.step(make_metrics(0.300, utils={"front": 0.90}))
        assert c.thresholds.util_threshold("front") == pytest.approx(0.15)

    def test_moving_average_cleared_after_rollback(self):
        c = controller()
        c.step(make_metrics(0.100))
        c.step(make_metrics(0.300))  # rollback clears history
        assert len(c._responses) == 0


class TestExploration:
    def test_explore_jumps_to_history(self):
        cfg = PEMAConfig(explore_a=1.0, explore_b=0.0)  # always explore
        c = controller(cfg, seed=1)
        first = c.step(make_metrics(0.100))
        # First step has one record; explore jumps to it (the initial alloc).
        assert first.action in (StepAction.EXPLORE, StepAction.REDUCE)
        second = c.step(make_metrics(0.100))
        assert second.action is StepAction.EXPLORE
        assert second.allocation.total() <= 8.0 + 1e-9

    def test_no_exploration_when_disabled(self):
        c = controller()  # A = B = 0
        for _ in range(20):
            result = c.step(make_metrics(0.100))
            assert result.action is not StepAction.EXPLORE


class TestDynamicSLO:
    def test_set_slo(self):
        c = controller()
        c.step(make_metrics(0.100))
        c.set_slo(0.200)
        assert c.slo == 0.200
        result = c.step(make_metrics(0.220))  # violates the new SLO
        assert result.action is StepAction.ROLLBACK

    def test_set_slo_validation(self):
        with pytest.raises(ValueError):
            controller().set_slo(0.0)


class TestFork:
    def test_fork_inherits_state(self):
        c = controller()
        for _ in range(5):
            c.step(make_metrics(0.100, utils={"front": 0.4}))
        child = c.fork(seed=99)
        assert child.allocation == c.allocation
        assert child.thresholds.util_threshold("front") == pytest.approx(
            c.thresholds.util_threshold("front")
        )
        assert len(child.rhdb) == len(c.rhdb)

    def test_fork_is_independent(self):
        c = controller()
        c.step(make_metrics(0.100))
        child = c.fork(seed=99)
        child.step(make_metrics(0.100))
        assert child.steps_taken == c.steps_taken + 1

    def test_decide_protocol(self):
        c = controller()
        alloc = c.decide(make_metrics(0.100))
        assert isinstance(alloc, Allocation)
        assert alloc == c.allocation


class TestAblationSwitches:
    def test_no_bottleneck_filter_can_reduce_throttled(self):
        cfg = PEMAConfig(explore_a=0.0, explore_b=0.0, use_bottleneck_filter=False)
        c = controller(cfg, seed=0)
        m = make_metrics(0.050, throttles={"db": 5.0})
        seen_db = False
        for _ in range(10):
            result = c.step(m)
            seen_db = seen_db or ("db" in result.targets)
        assert seen_db

    def test_static_thresholds_never_ratchet(self):
        cfg = PEMAConfig(
            explore_a=0.0, explore_b=0.0, use_dynamic_thresholds=False
        )
        c = controller(cfg)
        for _ in range(5):
            c.step(make_metrics(0.100, utils={"front": 0.9}))
        assert c.thresholds.util_threshold("front") == pytest.approx(0.15)

    def test_k1_window_uses_instantaneous_response(self):
        cfg = PEMAConfig(explore_a=0.0, explore_b=0.0, moving_average_window=1)
        c = controller(cfg)
        c.step(make_metrics(0.050))
        result = c.step(make_metrics(0.240))  # near SLO instantaneously
        assert result.signal < 0.1


class TestSeverityAwareRollback:
    def test_default_gain_is_paper_behaviour(self):
        c = controller()
        assert c._rollback_target(0.5) == pytest.approx(SLO)

    def test_margin_scales_with_overshoot(self):
        cfg = PEMAConfig(
            explore_a=0.0, explore_b=0.0, rollback_severity_gain=1.0
        )
        c = controller(cfg)
        mild = c._rollback_target(SLO * 1.1)
        severe = c._rollback_target(SLO * 1.5)
        assert severe < mild < SLO

    def test_margin_capped_at_half(self):
        cfg = PEMAConfig(
            explore_a=0.0, explore_b=0.0, rollback_severity_gain=5.0
        )
        c = controller(cfg)
        assert c._rollback_target(SLO * 10) == pytest.approx(SLO * 0.5)

    def test_severe_violation_rolls_back_farther(self):
        cfg = PEMAConfig(
            explore_a=0.0, explore_b=0.0, rollback_severity_gain=2.0
        )
        c = controller(cfg)
        # Build history: a fat record (low response) and a lean one
        # (response close to SLO).
        c.step(make_metrics(0.080))   # 8.0 total, very safe
        lean_total = c.allocation.total()
        c.step(make_metrics(0.230))   # lean allocation, close to SLO
        # Severe violation: the lean record (0.230 > 0.5*SLO... but above
        # the severity ceiling) must be skipped for the safe fat record.
        result = c.step(make_metrics(SLO * 2.0))
        assert result.action is StepAction.ROLLBACK
        assert result.allocation.total() == pytest.approx(8.0)

    def test_mild_violation_prefers_lean_record(self):
        cfg = PEMAConfig(
            explore_a=0.0, explore_b=0.0, rollback_severity_gain=2.0
        )
        c = controller(cfg)
        c.step(make_metrics(0.080))
        lean_total = c.allocation.total()
        c.step(make_metrics(0.180))
        result = c.step(make_metrics(SLO * 1.02))  # barely violating
        assert result.action is StepAction.ROLLBACK
        # Mild overshoot: the lean record is still acceptable.
        assert result.allocation.total() == pytest.approx(lean_total)

    def test_fallback_to_plain_query(self):
        """If the severity ceiling excludes every record, fall back to the
        paper's plain nearest-safe rollback."""
        cfg = PEMAConfig(
            explore_a=0.0, explore_b=0.0, rollback_severity_gain=5.0
        )
        c = controller(cfg)
        c.step(make_metrics(0.200))  # only record: response 0.2 > 0.5*SLO
        result = c.step(make_metrics(SLO * 9.0))
        assert result.action is StepAction.ROLLBACK
        assert result.allocation.total() == pytest.approx(8.0)
