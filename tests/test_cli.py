"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments import ExperimentSpec


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--app", "nope"])

    def test_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.app == "sockshop"
        assert args.workload is None
        assert not args.fast


class TestCommands:
    def test_apps(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        for name in ("sockshop", "trainticket", "hotelreservation"):
            assert name in out

    def test_run(self, capsys):
        assert main(
            ["run", "--app", "sockshop", "--iterations", "8", "--every", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "settled total CPU" in out
        assert "violations" in out

    def test_run_fast(self, capsys):
        assert main(
            ["run", "--app", "sockshop", "--iterations", "6", "--fast"]
        ) == 0
        out = capsys.readouterr().out
        assert "violation exposure" in out

    def test_optimum(self, capsys):
        assert main(["optimum", "--app", "hotelreservation"]) == 0
        out = capsys.readouterr().out
        assert "total CPU" in out
        assert "frontend" in out

    def test_compare(self, capsys):
        assert main(
            ["compare", "--app", "sockshop", "--iterations", "20"]
        ) == 0
        out = capsys.readouterr().out
        assert "OPTM" in out and "PEMA" in out and "RULE" in out
        assert "saves" in out


class TestExperimentSpecs:
    @pytest.fixture
    def spec_dir(self, tmp_path):
        specs = tmp_path / "specs"
        specs.mkdir()
        for i, wl in enumerate((600.0, 700.0)):
            spec = ExperimentSpec(
                name=f"s{i}", app="sockshop", workload=wl, n_steps=4
            )
            (specs / f"s{i}.json").write_text(spec.to_json())
        return specs

    def test_single_file(self, spec_dir, tmp_path, capsys):
        out = tmp_path / "artifact.json"
        assert main(
            ["experiment", "--spec", str(spec_dir / "s0.json"),
             "--out", str(out)]
        ) == 0
        assert "# experiment s0" in capsys.readouterr().out
        assert json.loads(out.read_text())["spec"]["name"] == "s0"

    def test_directory_runs_every_spec(self, spec_dir, tmp_path, capsys):
        out_dir = tmp_path / "artifacts"
        assert main(
            ["experiment", "--spec", str(spec_dir), "--out", str(out_dir)]
        ) == 0
        output = capsys.readouterr().out
        assert "# experiment s0" in output and "# experiment s1" in output
        assert sorted(p.name for p in out_dir.iterdir()) == [
            "s0.artifact.json", "s1.artifact.json"
        ]

    def test_glob(self, spec_dir, capsys):
        assert main(["experiment", "--spec", str(spec_dir / "s*.json")]) == 0
        output = capsys.readouterr().out
        assert "# experiment s0" in output and "# experiment s1" in output

    def test_recursive_glob(self, spec_dir, tmp_path, capsys):
        nested = spec_dir / "deeper" / "down"
        nested.mkdir(parents=True)
        (spec_dir / "s0.json").rename(nested / "s0.json")
        assert main(
            ["experiment", "--spec", str(spec_dir / "**" / "*.json")]
        ) == 0
        output = capsys.readouterr().out
        assert "# experiment s0" in output and "# experiment s1" in output

    def test_out_stem_collisions_disambiguated(self, tmp_path, capsys):
        for sub, wl in (("a", 600.0), ("b", 700.0)):
            d = tmp_path / sub
            d.mkdir()
            spec = ExperimentSpec(
                name=sub, app="sockshop", workload=wl, n_steps=4
            )
            (d / "spec.json").write_text(spec.to_json())
        out_dir = tmp_path / "artifacts"
        assert main(
            ["experiment", "--spec", str(tmp_path / "*" / "spec.json"),
             "--out", str(out_dir)]
        ) == 0
        assert sorted(p.name for p in out_dir.iterdir()) == [
            "spec-2.artifact.json", "spec.artifact.json"
        ]

    def test_out_conflicting_with_file_is_an_error(
        self, spec_dir, tmp_path, capsys
    ):
        clash = tmp_path / "summary.json"
        clash.write_text("{}")
        assert main(
            ["experiment", "--spec", str(spec_dir), "--out", str(clash)]
        ) == 2
        assert "must be a directory" in capsys.readouterr().err

    def test_no_match_is_an_error(self, spec_dir, capsys):
        assert main(
            ["experiment", "--spec", str(spec_dir / "nope*.json")]
        ) == 2
        assert "no spec files match" in capsys.readouterr().err

    def test_bad_spec_names_offending_file(self, spec_dir, capsys):
        (spec_dir / "s2.json").write_text('{"app": "sockshop"}')
        assert main(["experiment", "--spec", str(spec_dir)]) == 2
        err = capsys.readouterr().err
        assert "s2.json" in err


class TestRegistryCommand:
    def test_lists_every_registry_with_descriptions(self, capsys):
        assert main(["registry"]) == 0
        out = capsys.readouterr().out
        for group in ("engines", "autoscalers", "workloads", "hooks",
                      "drivers", "state-stores"):
            assert group in out
        for kind in ("analytical", "pema", "replay", "wikipedia", "set_slo",
                     "constant", "memory", "directory"):
            assert kind in out
        # Every entry carries a non-empty one-line description.
        from repro.experiments import AUTOSCALERS, ENGINES, HOOKS, WORKLOADS
        from repro.service import LOAD_DRIVERS, STATE_STORES

        for registry in (ENGINES, AUTOSCALERS, WORKLOADS, HOOKS,
                         LOAD_DRIVERS, STATE_STORES):
            for name, description in registry.entries():
                assert description, f"{registry.label}:{name} lacks a description"
                assert "\n" not in description
                assert description in out

    def test_kind_filter(self, capsys):
        assert main(["registry", "--kind", "workloads"]) == 0
        out = capsys.readouterr().out
        assert "replay" in out
        assert "autoscalers" not in out

    def test_json_output(self, capsys):
        assert main(["registry", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["workloads"]["replay"]
        assert data["autoscalers"]["workload_aware_pema"]
