"""Trace replay: the ``replay`` workload kind, vectorized ``rate_batch``,
the manager-state artifact channel, and scalar/batched byte-identity of
replay sweep cells (including kill-and-resume)."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import (
    ExperimentSpec,
    run_experiment,
)
from repro.experiments.registry import WORKLOADS
from repro.experiments.runner import _run_unit_worker
from repro.sweeps import (
    SweepAxis,
    SweepGrid,
    SweepStore,
    batch_key,
    grid_summary_json,
    run_grid,
    run_sweep_cached,
    run_units_batched,
)
from repro.workload import (
    BurstWorkload,
    ConstantWorkload,
    NoisyTrace,
    PhasedTrace,
    RampWorkload,
    ReplaySegment,
    ReplayTrace,
    ScaledTrace,
    SinusoidalWorkload,
    StepWorkload,
    WikipediaTrace,
    batch_rates,
)


def all_traces():
    sin = SinusoidalWorkload(low=200.0, high=900.0, period=3600.0, phase=0.4)
    return [
        ConstantWorkload(rps=700.0),
        StepWorkload([(0.0, 300.0), (600.0, 700.0), (1800.0, 500.0)]),
        RampWorkload(start_rps=200.0, end_rps=900.0, duration=4000.0),
        sin,
        BurstWorkload(400.0, [(1200.0, 600.0, 750.0), (2160.0, 600.0, 650.0)]),
        WikipediaTrace(low_rps=200.0, high_rps=1100.0, seed=42),
        WikipediaTrace(low_rps=300.0, high_rps=800.0, seed=9, jitter=0.0),
        NoisyTrace(sin, sigma=0.12, seed=32),
        ScaledTrace(sin, scale=0.5, offset=100.0),
        PhasedTrace([(sin, 2400.0), (ConstantWorkload(rps=600.0), None)]),
        ReplayTrace(
            [
                ReplaySegment(WikipediaTrace(seed=7), 3600.0),
                ReplaySegment(NoisyTrace(sin, sigma=0.05, seed=3)),
            ]
        ),
        ReplayTrace(
            [ReplaySegment(WikipediaTrace(seed=7), 7200.0)], loop=True
        ),
    ]


class TestRateBatch:
    """``rate_batch(times)[i]`` must be the same float64 as ``rate(times[i])``."""

    @pytest.mark.parametrize(
        "trace", all_traces(), ids=lambda t: type(t).__name__
    )
    def test_bit_identical_on_control_grid(self, trace):
        times = np.arange(200, dtype=np.float64) * 120.0
        vec = batch_rates(trace, times)
        scal = np.asarray([trace.rate(float(t)) for t in times])
        assert vec.dtype == np.float64
        assert (vec == scal).all()

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=2e5, allow_nan=False),
            min_size=1,
            max_size=40,
        )
    )
    def test_bit_identical_on_arbitrary_times(self, raw_times):
        times = np.asarray(raw_times, dtype=np.float64)
        for trace in all_traces():
            vec = batch_rates(trace, times)
            scal = np.asarray([trace.rate(float(t)) for t in times])
            assert (vec == scal).all(), type(trace).__name__

    def test_fallback_without_rate_batch(self):
        class Plain:
            def rate(self, t):
                return 100.0 + t

        times = np.asarray([0.0, 1.5, 7.0])
        assert (batch_rates(Plain(), times) == times + 100.0).all()


class TestReplayTrace:
    def test_single_open_segment_is_transparent(self):
        wiki = WikipediaTrace(seed=5)
        replay = ReplayTrace([ReplaySegment(wiki)])
        for t in (0.0, 360.0, 100_000.0):
            assert replay.rate(t) == wiki.rate(t)

    def test_segments_restart_their_clocks(self):
        replay = ReplayTrace(
            [
                ReplaySegment(ConstantWorkload(rps=100.0), 600.0),
                ReplaySegment(
                    RampWorkload(
                        start_rps=0.0, end_rps=100.0, duration=100.0
                    ),
                    1000.0,
                ),
            ]
        )
        assert replay.rate(0.0) == 100.0
        assert replay.rate(600.0) == 0.0  # ramp's own t=0
        assert replay.rate(650.0) == 50.0
        assert replay.duration == 1600.0

    def test_loop_wraps_modulo_schedule(self):
        replay = ReplayTrace(
            [ReplaySegment(WikipediaTrace(seed=3), 7200.0)], loop=True
        )
        assert replay.rate(7200.0 + 37.0) == replay.rate(37.0)
        times = np.asarray([10.0, 7210.0, 14410.0])
        rates = replay.rate_batch(times)
        assert rates[0] == rates[1] == rates[2]

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            ReplayTrace([])
        with pytest.raises(ValueError, match="open-ended"):
            ReplayTrace(
                [
                    ReplaySegment(ConstantWorkload(rps=1.0)),
                    ReplaySegment(ConstantWorkload(rps=2.0), 10.0),
                ]
            )
        with pytest.raises(ValueError, match="looped replay"):
            ReplayTrace(
                [ReplaySegment(ConstantWorkload(rps=1.0))], loop=True
            )
        with pytest.raises(ValueError, match="duration must be positive"):
            ReplaySegment(ConstantWorkload(rps=1.0), 0.0)


class TestReplayRegistryKind:
    def test_builds_from_declarative_segments(self):
        trace = WORKLOADS.build(
            "replay",
            segments=[
                {
                    "source": {
                        "kind": "wikipedia",
                        "params": {"low_rps": 200.0, "high_rps": 1100.0,
                                   "seed": 42},
                    },
                    "hours": 36,
                }
            ],
        )
        assert isinstance(trace, ReplayTrace)
        assert trace.duration == 36 * 3600.0
        wiki = WikipediaTrace(low_rps=200.0, high_rps=1100.0, seed=42)
        assert trace.rate(123.0 * 120.0) == wiki.rate(123.0 * 120.0)

    def test_rejects_bad_segments(self):
        with pytest.raises(TypeError, match="non-empty 'segments'"):
            WORKLOADS.build("replay", segments=[])
        with pytest.raises(TypeError, match="needs 'source'"):
            WORKLOADS.build("replay", segments=[{"hours": 1}])
        with pytest.raises(TypeError, match="not both"):
            WORKLOADS.build(
                "replay",
                segments=[
                    {
                        "source": {"kind": "constant", "params": {"rps": 1.0}},
                        "hours": 1,
                        "duration": 60.0,
                    }
                ],
            )
        with pytest.raises(TypeError, match="unknown replay segment"):
            WORKLOADS.build(
                "replay",
                segments=[
                    {
                        "source": {"kind": "constant", "params": {"rps": 1.0}},
                        "hour": 1,
                    }
                ],
            )
        with pytest.raises(TypeError, match="unknown replay params"):
            WORKLOADS.build(
                "replay",
                segments=[
                    {"source": {"kind": "constant", "params": {"rps": 1.0}}}
                ],
                looped=True,
            )
        # Misspelled keys inside the nested source reference fail loudly
        # instead of silently building an all-defaults trace.
        with pytest.raises(TypeError, match="unknown replay 'source'"):
            WORKLOADS.build(
                "replay",
                segments=[{"source": {"kind": "wikipedia", "parms": {}}}],
            )
        with pytest.raises(TypeError, match="replay 'source' needs 'kind'"):
            WORKLOADS.build("replay", segments=[{"source": {"params": {}}}])


def replay_spec(**overrides):
    data = {
        "app": "sockshop",
        "workload": {
            "kind": "replay",
            "params": {
                "segments": [
                    {
                        "source": {
                            "kind": "wikipedia",
                            "params": {"low_rps": 300.0, "high_rps": 900.0,
                                       "seed": 7},
                        }
                    }
                ]
            },
        },
        "n_steps": 25,
        "seed": 3,
    }
    data.update(overrides)
    return ExperimentSpec.from_dict(data)


def manager_replay_spec(**overrides):
    defaults = {
        "autoscaler": {
            "kind": "workload_aware_pema",
            "params": {
                "workload_low": 300.0,
                "workload_high": 900.0,
                "min_range_width": 75.0,
                "split_after": 6,
                "slope_samples": 4,
                "start_rps": 900.0,
            },
        },
        "engine": {"kind": "analytical", "seed_offset": 2},
        "n_steps": 40,
        "capture": ["manager_state"],
    }
    defaults.update(overrides)
    return replay_spec(**defaults)


class TestManagerStateChannel:
    def test_capture_opt_in_round_trips(self):
        artifact = run_experiment(manager_replay_spec())
        state = artifact.manager_state(0)
        assert state["kind"] == "workload_aware_pema"
        assert state["slope"] is not None
        assert state["splits"], "expected at least one range split"
        assert [r["low"] for r in state["ranges"]] == sorted(
            r["low"] for r in state["ranges"]
        )
        # Lossless through the artifact JSON codec.
        recovered = type(artifact).from_json(artifact.to_json())
        assert recovered.manager_states == artifact.manager_states
        assert recovered.spec == artifact.spec

    def test_without_capture_everything_stays_legacy(self):
        spec = replay_spec()
        artifact = run_experiment(spec)
        assert artifact.manager_states == ()
        with pytest.raises(LookupError, match="no manager state"):
            artifact.manager_state(0)
        assert "capture" not in spec.to_dict()
        assert "manager_states" not in artifact.to_dict()
        assert "manager_state" not in _run_unit_worker(spec.to_dict(), 0)

    def test_capture_on_stateless_autoscaler_is_null(self):
        spec = replay_spec(capture=["manager_state"])
        artifact = run_experiment(spec)
        assert artifact.manager_states == (None,)
        payload = _run_unit_worker(spec.to_dict(), 0)
        assert "manager_state" in payload and payload["manager_state"] is None

    def test_unknown_capture_channel_rejected(self):
        with pytest.raises(ValueError, match="unknown capture channel"):
            replay_spec(capture=["manager_sate"])


def small_replay_grid():
    return SweepGrid(
        name="replay-test",
        base=manager_replay_spec(),
        axes=(SweepAxis(name="seed", values=(3, 13, 23), path="seed"),),
    )


class TestReplayBatching:
    def test_replay_cells_are_batchable(self):
        assert batch_key(replay_spec()) == ("sockshop", "pema", 25, None)
        assert batch_key(manager_replay_spec()) == (
            "sockshop",
            "workload_aware_pema",
            40,
            None,
        )
        # Bad manager params fall back to the scalar path (same error there).
        assert (
            batch_key(
                replay_spec(
                    autoscaler={
                        "kind": "workload_aware_pema",
                        "params": {"workload_low": 300.0},
                    }
                )
            )
            is None
        )

    def test_batched_equals_scalar_including_manager_state(self):
        spec = manager_replay_spec()
        scalar = _run_unit_worker(spec.to_dict(), 0)
        (batched,) = run_units_batched([(spec, 0)])
        assert json.dumps(scalar, sort_keys=True) == json.dumps(
            batched, sort_keys=True
        )
        assert batched["manager_state"]["splits"]

    @pytest.mark.slow
    @settings(max_examples=10, deadline=None)
    @given(
        seeds=st.lists(
            st.integers(min_value=0, max_value=10_000),
            min_size=1,
            max_size=4,
            unique=True,
        ),
        n_steps=st.integers(min_value=5, max_value=30),
        manager=st.booleans(),
    )
    def test_property_scalar_vs_batched_replay_units(
        self, seeds, n_steps, manager
    ):
        make = manager_replay_spec if manager else replay_spec
        specs = [make(seed=s, n_steps=n_steps) for s in seeds]
        scalar = [_run_unit_worker(s.to_dict(), 0) for s in specs]
        batched = run_units_batched([(s, 0) for s in specs])
        assert json.dumps(scalar, sort_keys=True) == json.dumps(
            batched, sort_keys=True
        )

    def test_store_entries_artifacts_and_states_byte_identical(
        self, tmp_path
    ):
        grid = small_replay_grid()
        specs = grid.specs()
        stores = {}
        outputs = {}
        for mode, batch in (("scalar", False), ("batched", True)):
            store = stores[mode] = SweepStore(tmp_path / mode)
            artifacts, report = run_sweep_cached(
                specs, store=store, batch=batch
            )
            outputs[mode] = [a.to_json() for a in artifacts]
            assert report.replay_units == len(specs)
            assert report.manager_states == len(specs)
            for artifact in artifacts:
                assert artifact.manager_state(0)["splits"]
        assert outputs["scalar"] == outputs["batched"]
        scalar_bytes = sorted(
            p.read_bytes() for p in stores["scalar"].entry_paths()
        )
        batched_bytes = sorted(
            p.read_bytes() for p in stores["batched"].entry_paths()
        )
        assert scalar_bytes == batched_bytes

    def test_cross_mode_cache_reuse(self, sweep_store):
        grid = small_replay_grid()
        cold = run_grid(grid, store=sweep_store, batch=True)
        warm = run_grid(grid, store=sweep_store, batch=False)
        assert cold.report.cache_hits == 0
        assert warm.report.cache_hits == warm.report.units
        assert grid_summary_json(warm) == grid_summary_json(cold)
        assert [a.to_json() for a in warm.artifacts] == [
            a.to_json() for a in cold.artifacts
        ]
        # Manager state survives the store round trip.
        assert all(a.manager_state(0)["splits"] for a in warm.artifacts)

    def test_kill_and_resume_mid_replay_byte_identical(self, sweep_store):
        grid = small_replay_grid()
        uninterrupted = run_grid(grid, batch=True)

        class Killed(RuntimeError):
            pass

        store = sweep_store

        def die_after_first_chunk(progress):
            if progress.chunk >= 1:
                raise Killed()

        with pytest.raises(Killed):
            run_grid(
                grid,
                store=store,
                batch=True,
                chunk_size=1,
                on_progress=die_after_first_chunk,
            )
        assert 0 < len(store) < grid.n_cells  # partial progress persisted

        resumed = run_grid(grid, store=store, batch=True, chunk_size=1)
        assert resumed.report.cache_hits > 0
        assert resumed.report.computed > 0
        assert grid_summary_json(resumed) == grid_summary_json(uninterrupted)
        assert [a.to_json() for a in resumed.artifacts] == [
            a.to_json() for a in uninterrupted.artifacts
        ]
        assert [a.manager_states for a in resumed.artifacts] == [
            a.manager_states for a in uninterrupted.artifacts
        ]


class TestSweepReportReplayStats:
    def test_counters_and_cli_report_fields(self):
        artifacts, report = run_sweep_cached([manager_replay_spec()])
        assert report.replay_units == 1
        assert report.manager_states == 1
        data = report.to_dict()
        assert data["replay_units"] == 1
        assert data["manager_states"] == 1

    def test_non_replay_sweeps_report_zero(self):
        spec = ExperimentSpec(
            app="sockshop", workload=700.0, n_steps=3, seed=1
        )
        _, report = run_sweep_cached([spec])
        assert report.replay_units == 0
        assert report.manager_states == 0
