"""The actuation plane: applies decisions to the simulated environment.

In the MAPE-K framing the guardians are Analyze+Plan and the
:class:`Rescaler` is Execute: it takes the allocation an autoscaler
chose, pushes it into the app's environment (the simulated deployment),
and observes the interval served under it.  Keeping actuation in one
object gives the service a single choke point for rescale accounting —
how many scale-ups/downs each app performed, how much CPU moved — and a
seam where a real deployment would swap in an API-server client for the
simulated engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.service.telemetry import (
    RESCALER_APPLIES,
    RESCALER_CPU_MOVED,
    RESCALER_SCALE_DOWNS,
    RESCALER_SCALE_UPS,
)
from repro.sim.types import Allocation, IntervalMetrics

if TYPE_CHECKING:  # pragma: no cover
    from repro.service.guardian import Guardian

__all__ = ["Rescaler", "RescaleStats"]


@dataclass
class RescaleStats:
    """Per-app actuation counters (reported by ``/apps`` and the CLI)."""

    applies: int = 0
    scale_ups: int = 0
    scale_downs: int = 0
    cpu_moved: float = 0.0
    """Total absolute per-service CPU change across all applies."""

    def to_dict(self) -> dict[str, Any]:
        return {
            "applies": self.applies,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "cpu_moved": self.cpu_moved,
        }


class Rescaler:
    """Applies allocations to per-app environments and observes them.

    The observation call is byte-identical to the offline control
    loop's: ``environment.observe(allocation, rps, interval)`` with the
    same floats in the same order, so the Rescaler adds accounting, not
    behavior.
    """

    def __init__(self) -> None:
        self._stats: dict[str, RescaleStats] = {}
        self._last: dict[str, Allocation] = {}

    def stats(self, app_id: str) -> RescaleStats:
        return self._stats.setdefault(app_id, RescaleStats())

    def apply(self, guardian: "Guardian", allocation: Allocation) -> None:
        """Push ``allocation`` into the app's (simulated) deployment.

        The analytical engine consumes the allocation at observe time,
        so applying is pure bookkeeping here; a cluster-backed guardian
        would call ``cluster.apply`` exactly as the offline loop does.
        """
        app_id = guardian.app_id
        stats = self.stats(app_id)
        stats.applies += 1
        RESCALER_APPLIES.inc(app=app_id)
        previous = self._last.get(app_id)
        if previous is not None:
            names = allocation.names
            new = allocation.as_array(names)
            old = previous.as_array(names)
            if np.any(new > old):
                stats.scale_ups += 1
                RESCALER_SCALE_UPS.inc(app=app_id)
            if np.any(new < old):
                stats.scale_downs += 1
                RESCALER_SCALE_DOWNS.inc(app=app_id)
            moved = float(np.abs(new - old).sum())
            stats.cpu_moved += moved
            RESCALER_CPU_MOVED.inc(moved, app=app_id)
        self._last[app_id] = allocation

    def observe(
        self, guardian: "Guardian", allocation: Allocation, rps: float
    ) -> IntervalMetrics:
        """One interval served under ``allocation`` at ``rps``."""
        return guardian.unit.engine.observe(
            allocation, rps, guardian.spec.interval
        )

    def forget(self, app_id: str) -> None:
        """Drop an unregistered app's actuation state."""
        self._stats.pop(app_id, None)
        self._last.pop(app_id, None)
        for metric in (
            RESCALER_APPLIES,
            RESCALER_SCALE_UPS,
            RESCALER_SCALE_DOWNS,
            RESCALER_CPU_MOVED,
        ):
            metric.remove(app=app_id)
