"""CFS-quota service server for the DES.

Each microservice is a server whose active CPU jobs all run at rate 1 core
(threads on a big node) until the container's CFS quota for the current
100 ms period is exhausted; then every job freezes until the period
boundary — exactly Linux CFS bandwidth control, and the source of the
throttle-time metric PEMA consumes.

State advances lazily between events; the simulator guarantees that no
rate change (quota exhaust, period end, job completion, job arrival)
happens strictly inside an advance span.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CpuJob", "ServiceServer"]


@dataclass(slots=True)
class CpuJob:
    """One CPU burst of one visit."""

    job_id: int
    remaining: float
    visit_ref: object = field(default=None, repr=False)
    started_at: float = 0.0


class ServiceServer:
    """One microservice's CPU container."""

    def __init__(self, name: str, alloc_cores: float, period: float = 0.1) -> None:
        if alloc_cores <= 0:
            raise ValueError(f"{name}: allocation must be positive")
        if period <= 0:
            raise ValueError("period must be positive")
        self.name = name
        self.alloc = alloc_cores
        self.period = period
        self.jobs: dict[int, CpuJob] = {}
        self.throttled = False
        self.quota_left = alloc_cores * period
        self.last_advance = 0.0
        self.period_index = 0
        self.epoch = 0
        self.period_event_armed = False
        """Managed by the simulator: one PERIOD_END in flight at a time."""
        # Accumulators (reset by the measurement window).
        self.usage_seconds = 0.0
        self.throttle_seconds = 0.0
        self.period_usage = 0.0
        self.period_samples: list[float] = []

    # -- state advance -------------------------------------------------------
    def advance(self, now: float) -> None:
        """Integrate state from the last advance time to ``now``.

        Within the span the rate regime is constant: every job runs at 1
        core when unthrottled, 0 when throttled.
        """
        elapsed = now - self.last_advance
        if elapsed < -1e-9:
            raise ValueError("cannot advance backwards")
        if elapsed <= 0:
            self.last_advance = now
            return
        n = len(self.jobs)
        if n and not self.throttled:
            used = n * elapsed
            for job in self.jobs.values():
                job.remaining -= elapsed
            self.usage_seconds += used
            self.quota_left -= used
            self.period_usage += used
        elif n and self.throttled:
            self.throttle_seconds += elapsed
        self.last_advance = now

    # -- transitions -----------------------------------------------------------
    def add_job(self, job: CpuJob, now: float) -> None:
        """Admit a CPU job, refreshing the quota if the server sat idle
        across one or more period boundaries."""
        if not self.jobs:
            self.sync_period(now)
        self.jobs[job.job_id] = job
        self.epoch += 1

    def remove_job(self, job_id: int) -> CpuJob:
        job = self.jobs.pop(job_id)
        self.epoch += 1
        return job

    def set_throttled(self) -> None:
        self.throttled = True
        self.epoch += 1

    def new_period(self, now: float) -> None:
        """Period boundary: record usage sample, refill quota, unfreeze."""
        self.period_samples.append(self.period_usage / self.period)
        self.period_usage = 0.0
        self.quota_left = self.alloc * self.period
        self.throttled = False
        self.period_index = int(now / self.period + 1e-9)
        self.epoch += 1

    def sync_period(self, now: float) -> None:
        """Lazy period refresh for idle spans (no events were scheduled).

        Records the stale partial period's usage sample once; the fully
        idle periods in between contribute the zero padding applied at
        measurement time.
        """
        idx = int(now / self.period + 1e-9)
        if idx > self.period_index:
            self.period_samples.append(self.period_usage / self.period)
            self.period_usage = 0.0
            self.quota_left = self.alloc * self.period
            self.throttled = False
            self.period_index = idx

    # -- next-event horizon -------------------------------------------------------
    def next_completion(self) -> tuple[int, float] | None:
        """(job_id, dt) of the earliest finishing job at current rates."""
        if not self.jobs or self.throttled:
            return None
        job = min(self.jobs.values(), key=lambda j: j.remaining)
        return job.job_id, max(job.remaining, 0.0)

    def time_to_quota_exhaust(self) -> float | None:
        """dt until the quota runs out at current concurrency (None if safe)."""
        n = len(self.jobs)
        if not n or self.throttled:
            return None
        return max(self.quota_left, 0.0) / n

    # -- measurement -----------------------------------------------------------
    def reset_accumulators(self) -> None:
        self.usage_seconds = 0.0
        self.throttle_seconds = 0.0
        self.period_samples.clear()
