"""Brownout — degrade service level instead of scaling resources.

The self-adaptive brownout line of work (dimmer-controlled optional
content) keeps resources *fixed* and trades response quality for
latency: a dimmer θ ∈ [0, 1] sets how much optional work each request
performs, and a feedback controller moves θ to hold the latency
setpoint.  Here the dimmer actuates the analytical engine's app-wide
``service_level`` channel — a degraded response costs proportionally
less CPU demand — so a brownout cell answers the robustness question
"what if we never rescaled and only degraded?".

Controller shape (the classic brownout loop): a proportional step on the
normalized error against a safety-margin setpoint, with *asymmetric*
smoothing — recovery (raising θ) is damped hard so one good interval
does not undo a violation response, while degradation acts at full gain.

Determinism: pure float arithmetic, no RNG; the batched path binds each
scalar controller to a per-cell facade of the batched engine, so the
dimmer writes the same floats in the same order as scalar execution.
"""

from __future__ import annotations

from typing import Any

from repro.sim.types import Allocation, IntervalMetrics

__all__ = ["BrownoutController"]


class BrownoutController:
    """Hold a fixed allocation; move a service-level dimmer to meet the SLO.

    Per interval, with setpoint ``margin * slo``::

        error <- (setpoint - latency_p95) / setpoint   # positive = headroom
        if error > 0: error <- error * smoothing       # damped recovery
        theta <- clamp(theta + gain * error, 0, 1)
        dim   <- dim_floor + (1 - dim_floor) * theta

    ``dim`` is pushed to the bound environment's ``set_service_level``
    channel (when an environment is bound), taking effect from the next
    interval on — the same decide-then-observe order every execution
    path uses.
    """

    def __init__(
        self,
        initial_allocation: Allocation,
        slo: float,
        *,
        gain: float = 0.5,
        smoothing: float = 0.1,
        margin: float = 0.9,
        dim_floor: float = 0.2,
        theta: float = 1.0,
    ) -> None:
        if slo <= 0:
            raise ValueError(f"slo must be positive: {slo}")
        if gain <= 0:
            raise ValueError(f"gain must be positive: {gain}")
        if not 0 < smoothing <= 1:
            raise ValueError(f"smoothing must be in (0, 1]: {smoothing}")
        if not 0 < margin <= 1:
            raise ValueError(f"margin must be in (0, 1]: {margin}")
        if not 0 < dim_floor < 1:
            raise ValueError(f"dim_floor must be in (0, 1): {dim_floor}")
        if not 0 <= theta <= 1:
            raise ValueError(f"theta must be in [0, 1]: {theta}")
        self.slo = float(slo)
        self.gain = float(gain)
        self.smoothing = float(smoothing)
        self.margin = float(margin)
        self.dim_floor = float(dim_floor)
        self.theta = float(theta)
        self._allocation = initial_allocation
        self._environment: Any = None
        self._last: dict[str, Any] | None = None

    @property
    def allocation(self) -> Allocation:
        return self._allocation

    def bind_environment(self, environment: Any) -> None:
        """Attach the engine whose ``set_service_level`` the dimmer drives."""
        if not hasattr(environment, "set_service_level"):
            raise ValueError(
                f"engine {type(environment).__name__} has no service-level "
                f"channel (brownout needs the analytical engine)"
            )
        self._environment = environment

    def dim(self) -> float:
        """The current service-level dimmer value in [dim_floor, 1]."""
        return self.dim_floor + (1.0 - self.dim_floor) * self.theta

    def decide(self, metrics: IntervalMetrics) -> Allocation:
        setpoint = self.margin * self.slo
        error = (setpoint - metrics.latency_p95) / setpoint
        if error > 0:
            error = error * self.smoothing
        theta = self.theta + self.gain * error
        if theta > 1.0:
            theta = 1.0
        elif theta < 0.0:
            theta = 0.0
        self.theta = theta
        dim = self.dim()
        if self._environment is not None:
            self._environment.set_service_level(dim)
        self._last = {
            "kind": "brownout",
            "error": float(error),
            "theta": float(theta),
            "dim": float(dim),
        }
        return self._allocation

    def last_decision(self) -> dict[str, Any] | None:
        """The causal record of the latest step (``decision_trace``)."""
        return self._last

    def state_snapshot(self) -> dict[str, Any]:
        """Controller state for the ``manager_state`` capture channel."""
        return {
            "kind": "brownout",
            "theta": float(self.theta),
            "dim": float(self.dim()),
            "slo": float(self.slo),
        }
