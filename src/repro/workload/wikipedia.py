"""Synthetic Wikipedia-like diurnal workload (paper Fig. 14, trace [34]).

The paper replays 36 hours of the Wikipedia access trace of Urdaneta et
al., scaled into 200-1100 requests per second.  The original trace is not
redistributable, so we synthesize its well-documented shape: a dominant
24-hour harmonic with a secondary 12-hour harmonic, a mild weekday drift,
and small high-frequency fluctuation.  The resulting series visits the same
[low, high] envelope with the same two-peaks-per-day structure, which is
all the experiment consumes (CPU must track load through full diurnal
swings).
"""

from __future__ import annotations

import numpy as np

__all__ = ["WikipediaTrace"]

_DAY = 86_400.0


class WikipediaTrace:
    """Diurnal trace scaled to ``[low_rps, high_rps]``."""

    def __init__(
        self,
        low_rps: float = 200.0,
        high_rps: float = 1100.0,
        seed: int = 7,
        jitter: float = 0.02,
        phase_hours: float = 9.0,
    ) -> None:
        if not 0 <= low_rps < high_rps:
            raise ValueError("need 0 <= low_rps < high_rps")
        if jitter < 0:
            raise ValueError("jitter must be >= 0")
        self.low_rps = low_rps
        self.high_rps = high_rps
        self.jitter = jitter
        self.seed = seed
        self.phase = phase_hours * 3600.0
        # Fixed harmonic mix measured from published Wikipedia workload
        # studies: primary diurnal + secondary semidiurnal + slow drift.
        self._weights = (1.0, 0.35, 0.12)

    def _shape(self, t: float) -> float:
        """Raw shape in [0, 1] before scaling."""
        w1, w2, w3 = self._weights
        x = 2.0 * np.pi * (t + self.phase)
        raw = (
            w1 * np.sin(x / _DAY)
            + w2 * np.sin(2.0 * x / _DAY + 0.7)
            + w3 * np.sin(x / (7.0 * _DAY) + 0.3)
        )
        span = w1 + w2 + w3
        return float((raw + span) / (2.0 * span))

    def rate(self, t: float) -> float:
        base = self.low_rps + (self.high_rps - self.low_rps) * self._shape(t)
        if self.jitter:
            bucket = int(t // 300.0)  # new jitter draw every 5 minutes
            rng = np.random.default_rng((self.seed, bucket))
            base *= float(np.exp(rng.normal(0.0, self.jitter)))
        return float(min(max(base, self.low_rps * 0.9), self.high_rps * 1.1))

    def rate_batch(self, times: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`rate`: bit-identical, one call per time grid.

        The deterministic harmonics evaluate elementwise through the same
        float64 operations as the scalar path; the jitter factor is a pure
        function of (seed, 5-minute bucket), so one draw per unique bucket
        replays every scalar draw exactly.
        """
        times = np.asarray(times, dtype=np.float64)
        w1, w2, w3 = self._weights
        x = 2.0 * np.pi * (times + self.phase)
        raw = (
            w1 * np.sin(x / _DAY)
            + w2 * np.sin(2.0 * x / _DAY + 0.7)
            + w3 * np.sin(x / (7.0 * _DAY) + 0.3)
        )
        span = w1 + w2 + w3
        shape = (raw + span) / (2.0 * span)
        base = self.low_rps + (self.high_rps - self.low_rps) * shape
        if self.jitter:
            buckets = (times // 300.0).astype(np.int64)
            factors = np.empty_like(base)
            for bucket in np.unique(buckets):
                rng = np.random.default_rng((self.seed, int(bucket)))
                factors[buckets == bucket] = np.exp(
                    rng.normal(0.0, self.jitter)
                )
            base = base * factors
        return np.minimum(
            np.maximum(base, self.low_rps * 0.9), self.high_rps * 1.1
        )
