"""Fig. 13 — dynamic workload ranges on TrainTicket, λ ∈ [200, 300].

Paper: PEMA starts with the wide 200~300 range; it splits around iteration
50 into 300/250, then again (250→250/225, 300→300/275) near iterations
80-85; each child starts from the parent's allocation and needs only a few
iterations, with occasional mitigated SLO violations.
"""

from __future__ import annotations

import numpy as np

from benchmarks._report import emit
from repro.apps import build_app
from repro.bench import format_table
from repro.core import ControlLoop, WorkloadAwarePEMA
from repro.sim import AnalyticalEngine
from repro.workload import ConstantWorkload, NoisyTrace

ITERS = 120


def run_fig13():
    app = build_app("trainticket")
    manager = WorkloadAwarePEMA(
        app.service_names,
        app.slo,
        app.generous_allocation(300.0),
        workload_low=200.0,
        workload_high=300.0,
        min_range_width=25.0,
        split_after=12,
        slope_samples=5,
        seed=31,
    )
    trace = NoisyTrace(ConstantWorkload(250.0), sigma=0.12, seed=32)
    engine = AnalyticalEngine(app, seed=33)
    result = ControlLoop(engine, manager, trace, slo=app.slo).run(ITERS)
    return manager, result


def test_fig13_dynamic_range(benchmark):
    manager, result = benchmark.pedantic(run_fig13, rounds=1, iterations=1)
    rows = [
        [
            it,
            round(float(result.workloads[it]), 0),
            round(float(result.total_cpu[it]), 1),
            round(float(result.responses[it] * 1000), 0),
        ]
        for it in range(0, ITERS, 8)
    ]
    split_rows = [
        [
            s.step,
            f"{s.parent[0]:g}~{s.parent[1]:g}",
            f"{s.lower[0]:g}~{s.lower[1]:g} (#{s.lower_pema_id})",
            f"{s.upper[0]:g}~{s.upper[1]:g} (#{s.upper_pema_id})",
        ]
        for s in manager.tree.splits
    ]
    emit(
        "fig13_dynamic_range",
        format_table(
            ["iter", "workload_rps", "total_cpu", "response_ms"],
            rows,
            title="Fig. 13 — PEMA on TrainTicket with dynamic workload "
            "ranges (SLO 900 ms)",
        )
        + "\n\n"
        + format_table(
            ["at_step", "parent", "lower_child", "upper_child"],
            split_rows,
            title="Range splits (paper: 200~300 splits ~iter 50, children "
            "split again ~80-85)",
        )
        + f"\n\nfinal ranges: {', '.join(manager.range_labels())}",
    )
    # Shape claims: splitting actually happened, down toward 25-rps ranges.
    assert len(manager.tree.splits) >= 2
    widths = sorted({leaf.width for leaf in manager.tree.leaves})
    assert widths[0] <= 50.0
    # Parents keep the upper child: PEMA #1 owns the topmost range.
    top = max(manager.tree.leaves, key=lambda l: l.high)
    assert top.pema_id == 1
    assert result.violation_rate() < 0.25
