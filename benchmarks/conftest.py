"""Benchmark-suite configuration."""

import sys
from pathlib import Path

# Make `benchmarks._report` importable when pytest is invoked from the
# repository root with `pytest benchmarks/`.
sys.path.insert(0, str(Path(__file__).parent.parent))
