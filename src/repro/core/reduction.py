"""Reduction sizing — Eqns. (3), (4), (10), (11) of the paper.

The *reduction signal* is the normalized headroom between the response
target and the (moving-average) measured response::

    signal = clip( (R_buf - r_avg) / (alpha * R), 0, 1 )

where ``R_buf = response_buffer * R``.  From the signal follow:

* ``n_t = floor(N * signal)`` — how many microservices to shrink (Eqn. 3 /
  10 with the K-sample moving average of Eqn. 10);
* ``Δt = beta * signal`` — the fractional CPU reduction applied to each
  selected service (Eqn. 4 / 11).

As the response approaches the target the signal decays to zero, so PEMA
slows down and finally stops — the QoS-conservative behaviour of §3.1.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["reduction_signal", "num_targets", "reduction_fraction"]


def reduction_signal(
    responses: Sequence[float] | float,
    target: float,
    alpha: float,
    response_buffer: float = 1.0,
) -> float:
    """Normalized resource-reduction opportunity in [0, 1].

    ``responses`` is either the most recent response (Eqns. 3-4) or the K
    most recent responses, which are averaged (Eqns. 10-11).
    """
    if target <= 0:
        raise ValueError(f"target must be positive: {target}")
    if not 0 < alpha <= 1:
        raise ValueError(f"alpha must be in (0, 1]: {alpha}")
    if not 0 < response_buffer <= 1:
        raise ValueError(f"response_buffer must be in (0, 1]: {response_buffer}")
    r_avg = float(np.mean(responses))
    if r_avg < 0:
        raise ValueError(f"responses must be non-negative: {r_avg}")
    raw = (response_buffer * target - r_avg) / (alpha * target)
    return float(np.clip(raw, 0.0, 1.0))


def num_targets(n_services: int, signal: float) -> int:
    """Eqn. (3): how many microservices to reduce this step.

    Floors to an integer; a zero result means PEMA holds (converged or out
    of headroom).
    """
    if n_services < 1:
        raise ValueError("n_services must be >= 1")
    if not 0 <= signal <= 1:
        raise ValueError(f"signal must be in [0, 1]: {signal}")
    return int(np.floor(n_services * signal))


def reduction_fraction(beta: float, signal: float) -> float:
    """Eqn. (4): per-service fractional CPU reduction for this step."""
    if not 0 < beta <= 1:
        raise ValueError(f"beta must be in (0, 1]: {beta}")
    if not 0 <= signal <= 1:
        raise ValueError(f"signal must be in [0, 1]: {signal}")
    return beta * signal
