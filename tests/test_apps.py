"""The three prototype applications match the paper's descriptions."""

import pytest

from repro.apps import CALIBRATIONS, app_names, build_app
from repro.sim import AnalyticalEngine


class TestRegistry:
    def test_names(self):
        assert app_names() == ("hotelreservation", "sockshop", "trainticket")

    def test_unknown_app(self):
        with pytest.raises(KeyError):
            build_app("nope")

    def test_scale_overrides(self):
        base = build_app("sockshop")
        double = build_app("sockshop", demand_scale=CALIBRATIONS["sockshop"].demand_scale * 2)
        assert double.service("frontend").cpu_demand == pytest.approx(
            2 * base.service("frontend").cpu_demand
        )


class TestPaperDimensions:
    """Service counts and SLOs straight from §2.1."""

    @pytest.mark.parametrize(
        "name,count,slo",
        [
            ("sockshop", 13, 0.250),
            ("trainticket", 41, 0.900),
            ("hotelreservation", 18, 0.050),
        ],
    )
    def test_counts_and_slos(self, name, count, slo):
        app = build_app(name)
        assert app.n_services == count
        assert app.slo == pytest.approx(slo)

    def test_probe_services_exist(self):
        tt = build_app("trainticket")
        for name in ("seat", "basic", "ticketinfo"):
            tt.service(name)
        ss = build_app("sockshop")
        for name in ("carts", "orders", "frontend"):
            ss.service(name)
        hr = build_app("hotelreservation")
        for name in ("frontend", "search"):
            hr.service(name)

    @pytest.mark.parametrize("name", ["sockshop", "trainticket", "hotelreservation"])
    def test_every_service_is_reachable(self, name):
        """No dead services: every service appears in some request plan."""
        app = build_app(name)
        rates = app.visit_rates
        unused = [svc for svc, v in rates.items() if v <= 0]
        assert unused == []

    @pytest.mark.parametrize("name", ["sockshop", "trainticket", "hotelreservation"])
    def test_frontend_on_every_path(self, name):
        app = build_app(name)
        entry = {"sockshop": "frontend", "trainticket": "gateway",
                 "hotelreservation": "frontend"}[name]
        for rc in app.request_classes:
            first_stage_services = [s for s, _ in rc.stages[0].parallel]
            assert first_stage_services == [entry]


class TestCalibration:
    """The fitted scales put the optima near the paper's totals."""

    @pytest.mark.parametrize("name", ["sockshop", "trainticket", "hotelreservation"])
    def test_bottleneck_total_near_target(self, name):
        cal = CALIBRATIONS[name]
        app = build_app(name)
        engine = AnalyticalEngine(app)
        total = engine.bottleneck_allocation(cal.reference_workload).total()
        assert total == pytest.approx(cal.target_optimum_total, rel=0.05)

    @pytest.mark.parametrize("name", ["sockshop", "trainticket", "hotelreservation"])
    def test_generous_allocation_satisfies_slo(self, name):
        cal = CALIBRATIONS[name]
        app = build_app(name)
        engine = AnalyticalEngine(app)
        gen = app.generous_allocation(cal.reference_workload)
        lat = engine.noiseless_latency(gen, cal.reference_workload)
        assert lat < 0.8 * app.slo

    def test_fig8_probe_utilizations(self):
        """seat/basic/ticketinfo bottleneck utilizations span ~15-25%."""
        app = build_app("trainticket")
        engine = AnalyticalEngine(app)
        wl = 200.0
        b = engine.bottleneck_allocation(wl)
        model = engine._concurrency(wl)
        utils = {}
        for name in ("seat", "basic", "ticketinfo"):
            i = app.service_names.index(name)
            utils[name] = model.mean[i] / b[name]
        assert 0.10 < utils["seat"] < 0.20
        assert 0.15 < utils["basic"] < 0.25
        assert 0.20 < utils["ticketinfo"] < 0.30
        assert utils["seat"] < utils["basic"] < utils["ticketinfo"]
