"""Visit-latency model and end-to-end aggregation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.latency import LatencyParams, end_to_end_latency, visit_latency


class TestLatencyParams:
    def test_defaults_valid(self):
        LatencyParams()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"queue_gain": -1.0},
            {"throttle_gain": -0.1},
            {"frac_critical": 0.0},
            {"frac_critical": 1.0},
            {"saturation": 0.0},
        ],
    )
    def test_rejects_bad_params(self, kwargs):
        with pytest.raises(ValueError):
            LatencyParams(**kwargs)


class TestVisitLatency:
    def test_floor_when_idle(self):
        p = LatencyParams()
        floors = np.array([0.01, 0.02])
        lat = visit_latency(floors, np.zeros(2), np.zeros(2), p)
        np.testing.assert_allclose(lat, floors)

    def test_overload_inflates(self):
        p = LatencyParams(queue_gain=3.0)
        lat = visit_latency(
            np.array([0.01]), np.array([0.5]), np.array([0.0]), p
        )
        assert lat[0] == pytest.approx(0.01 * 2.5)

    def test_throttle_term_at_critical_fraction(self):
        p = LatencyParams(queue_gain=0.0, throttle_gain=5.0, frac_critical=0.05)
        at_crit = visit_latency(
            np.array([0.01]), np.zeros(1), np.array([0.05]), p
        )[0]
        assert at_crit == pytest.approx(0.01 * 6.0)  # 1 + 5 * 1^power

    def test_throttle_power_steepens_below_knee(self):
        shallow = LatencyParams(queue_gain=0.0, throttle_gain=5.0,
                                throttle_power=2.0)
        steep = LatencyParams(queue_gain=0.0, throttle_gain=5.0,
                              throttle_power=3.0)
        frac = np.array([0.15])  # ratio = 3
        lo = visit_latency(np.array([0.01]), np.zeros(1), frac, shallow)[0]
        hi = visit_latency(np.array([0.01]), np.zeros(1), frac, steep)[0]
        assert hi > lo

    def test_saturation_caps_throttle(self):
        p = LatencyParams(queue_gain=0.0, throttle_gain=5.0, saturation=6.0,
                          throttle_power=2.0)
        huge = visit_latency(np.array([0.01]), np.zeros(1), np.array([1.0]), p)[0]
        assert huge == pytest.approx(0.01 * (1 + 5 * 36.0))

    def test_power_validation(self):
        with pytest.raises(ValueError):
            LatencyParams(throttle_power=0.5)

    @given(
        floor=st.floats(min_value=1e-4, max_value=0.5),
        o1=st.floats(min_value=0.0, max_value=5.0),
        o2=st.floats(min_value=0.0, max_value=5.0),
        t1=st.floats(min_value=0.0, max_value=1.0),
        t2=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_monotone_in_pressure(self, floor, o1, o2, t1, t2):
        """More overload / throttling never reduces visit latency."""
        p = LatencyParams()
        lo = visit_latency(
            np.array([floor]),
            np.array([min(o1, o2)]),
            np.array([min(t1, t2)]),
            p,
        )[0]
        hi = visit_latency(
            np.array([floor]),
            np.array([max(o1, o2)]),
            np.array([max(t1, t2)]),
            p,
        )[0]
        assert hi >= lo - 1e-12


class TestEndToEnd:
    def test_hand_computed(self, tiny_app):
        per_visit = {"front": 0.010, "logic": 0.008, "db": 0.006, "cache": 0.002}
        # read (w=0.7): front + max(logic, 0.8*cache) + db + 3 hops
        read = 0.010 + max(0.008, 0.8 * 0.002) + 0.006 + 3 * 0.0005
        # write (w=0.3): front + logic + 2*db + 3 hops
        write = 0.010 + 0.008 + 2 * 0.006 + 3 * 0.0005
        expected = 0.7 * read + 0.3 * write
        got = end_to_end_latency(tiny_app, per_visit)
        assert got == pytest.approx(expected)

    def test_accepts_array_input(self, tiny_app):
        arr = np.array([0.010, 0.008, 0.006, 0.002])
        as_map = {n: v for n, v in zip(tiny_app.service_names, arr)}
        assert end_to_end_latency(tiny_app, arr) == pytest.approx(
            end_to_end_latency(tiny_app, as_map)
        )

    def test_parallel_stage_takes_max(self, tiny_app):
        fast = {"front": 0.01, "logic": 0.001, "db": 0.001, "cache": 0.001}
        slow_cache = dict(fast, cache=1.0)
        # cache appears only in the read class's parallel stage (0.8 visits)
        base = end_to_end_latency(tiny_app, fast)
        slowed = end_to_end_latency(tiny_app, slow_cache)
        assert slowed > base
        assert slowed == pytest.approx(base + 0.7 * (0.8 * 1.0 - 0.001), rel=1e-6)
