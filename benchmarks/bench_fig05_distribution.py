"""Fig. 5 — good vs. bad resource distribution at identical total CPU.

Paper: with the *same* total CPU, randomly redistributing allocations
raises p95 latency by up to 43.9% (TrainTicket), 91.3% (SockShop), and
256.2% (HotelReservation).  We regenerate the three panels: per workload
level, the SLO-normalized response of the good (OPTM) allocation and of
random same-total redistributions.
"""

from __future__ import annotations

import numpy as np

from benchmarks._report import emit
from repro.apps import build_app
from repro.baselines import OptimumSearch
from repro.bench import format_table
from repro.sim import AnalyticalEngine, Allocation

# (workload levels, perturbation sigma).  The paper reports one "bad"
# configuration per panel without its distance from the good one; we pick
# per-app perturbation magnitudes that land the worst-case latency
# increase in the reported bands (+43.9% TT, +91.3% SS, +256.2% HR).
PANELS: dict[str, tuple[tuple[float, float, float], float]] = {
    "trainticket": ((100.0, 200.0, 300.0), 0.11),
    "sockshop": ((250.0, 550.0, 950.0), 0.45),
    "hotelreservation": ((300.0, 500.0, 700.0), 0.75),
}
N_BAD = 8


def _random_redistribution(
    alloc: Allocation,
    rng: np.random.Generator,
    sigma: float = 0.30,
    min_cpu: float = 0.05,
) -> Allocation:
    """Randomly alter allocations while keeping the total (paper §2.3).

    Lognormal multiplicative perturbation, renormalized to the original
    total — the paper's "randomly altering resource allocations while
    keeping the total resource the same" applied to a known-good config.
    """
    values = alloc.as_array()
    perturbed = values * np.exp(rng.normal(0.0, sigma, size=values.size))
    perturbed = np.maximum(perturbed, min_cpu)
    perturbed *= values.sum() / perturbed.sum()
    return Allocation.from_array(alloc.names, perturbed)


def run_fig05() -> list[list[object]]:
    rows: list[list[object]] = []
    for app_name, (workloads, sigma) in PANELS.items():
        app = build_app(app_name)
        engine = AnalyticalEngine(app)
        search = OptimumSearch(engine, restarts=1, seed=0)
        rng = np.random.default_rng(42)
        for wl in workloads:
            # "Good" = a comfortably SLO-satisfying allocation (slightly
            # above the optimum, like the paper's hand-found configs).
            good = search.find(wl).allocation.scale(1.08)
            good_resp = engine.noiseless_latency(good, wl) / app.slo
            bad_resps = []
            for _ in range(N_BAD):
                bad = _random_redistribution(good, rng, sigma=sigma)
                bad_resps.append(engine.noiseless_latency(bad, wl) / app.slo)
            worst = max(bad_resps)
            rows.append(
                [
                    app_name,
                    wl,
                    round(good.total(), 2),
                    round(good_resp, 3),
                    round(float(np.median(bad_resps)), 3),
                    round(worst, 3),
                    f"+{(worst / good_resp - 1) * 100:.0f}%",
                ]
            )
    return rows


def test_fig05_distribution(benchmark):
    rows = benchmark.pedantic(run_fig05, rounds=1, iterations=1)
    emit(
        "fig05_distribution",
        format_table(
            [
                "app",
                "workload_rps",
                "total_cpu",
                "good_resp/SLO",
                "bad_median/SLO",
                "bad_worst/SLO",
                "worst_increase",
            ],
            rows,
            title="Fig. 5 — same total CPU, good vs bad distribution "
            "(paper: up to +43.9% TT, +91.3% SS, +256.2% HR)",
        ),
    )
    # Shape claims: bad distributions hurt, and significantly so somewhere.
    for row in rows:
        assert row[5] >= row[3]  # worst bad >= good
    worst_increase = max(float(r[6].strip("+%")) for r in rows)
    assert worst_increase > 40.0  # the paper's panels show >= ~44% worst case
