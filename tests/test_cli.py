"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--app", "nope"])

    def test_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.app == "sockshop"
        assert args.workload is None
        assert not args.fast


class TestCommands:
    def test_apps(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        for name in ("sockshop", "trainticket", "hotelreservation"):
            assert name in out

    def test_run(self, capsys):
        assert main(
            ["run", "--app", "sockshop", "--iterations", "8", "--every", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "settled total CPU" in out
        assert "violations" in out

    def test_run_fast(self, capsys):
        assert main(
            ["run", "--app", "sockshop", "--iterations", "6", "--fast"]
        ) == 0
        out = capsys.readouterr().out
        assert "violation exposure" in out

    def test_optimum(self, capsys):
        assert main(["optimum", "--app", "hotelreservation"]) == 0
        out = capsys.readouterr().out
        assert "total CPU" in out
        assert "frontend" in out

    def test_compare(self, capsys):
        assert main(
            ["compare", "--app", "sockshop", "--iterations", "20"]
        ) == 0
        out = capsys.readouterr().out
        assert "OPTM" in out and "PEMA" in out and "RULE" in out
        assert "saves" in out
