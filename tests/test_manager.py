"""Workload-aware PEMA manager: bootstrap, routing, switching, splitting."""

import numpy as np
import pytest

from repro.core import PEMAConfig, WorkloadAwarePEMA
from repro.sim.types import Allocation
from tests.conftest import make_metrics

SERVICES = ("front", "logic", "db", "cache")


def manager(**kw) -> WorkloadAwarePEMA:
    defaults = dict(
        services=SERVICES,
        slo=0.250,
        initial_allocation=Allocation({s: 2.0 for s in SERVICES}),
        workload_low=200.0,
        workload_high=400.0,
        min_range_width=50.0,
        config=PEMAConfig(explore_a=0.0, explore_b=0.0),
        split_after=3,
        slope_samples=4,
        seed=0,
    )
    defaults.update(kw)
    return WorkloadAwarePEMA(**defaults)


class TestBootstrap:
    def test_allocation_fixed_during_bootstrap(self):
        m = manager(slope_samples=4)
        initial = m.allocation
        for i in range(4):
            alloc = m.decide(make_metrics(0.10 + 0.01 * i, workload=250.0 + 20 * i))
            assert alloc == initial
        assert m.slope is not None

    def test_slope_learned_from_samples(self):
        m = manager(slope_samples=5)
        for i in range(5):
            wl = 200.0 + 40 * i
            m.decide(make_metrics(0.05 + 0.0004 * wl, workload=wl))
        assert m.slope == pytest.approx(0.0004, rel=0.05)

    def test_zero_slope_samples_skips_bootstrap(self):
        m = manager(slope_samples=0)
        assert m.slope == 0.0
        m.decide(make_metrics(0.10, workload=250.0))
        assert m.history[-1].phase == "switch"  # straight to routing


class TestRouting:
    def run_bootstrap(self, m):
        for i in range(4):
            m.decide(make_metrics(0.10, workload=250.0 + i))

    def test_first_routed_step_is_switch(self):
        m = manager()
        self.run_bootstrap(m)
        m.decide(make_metrics(0.10, workload=250.0))
        assert m.history[-1].phase == "switch"

    def test_control_steps_follow(self):
        m = manager()
        self.run_bootstrap(m)
        m.decide(make_metrics(0.10, workload=250.0))
        m.decide(make_metrics(0.10, workload=250.0))
        assert m.history[-1].phase == "control"
        assert m.history[-1].range_label == "200~400"

    def test_dynamic_target_below_slo_at_low_workload(self):
        m = manager()
        # bootstrap with a real slope
        for i in range(4):
            wl = 200.0 + 60 * i
            m.decide(make_metrics(0.05 + 0.0005 * wl, workload=wl))
        m.decide(make_metrics(0.10, workload=210.0))  # switch
        m.decide(make_metrics(0.10, workload=210.0))  # control
        step = m.history[-1]
        assert step.phase == "control"
        assert step.target < 0.250  # Eqn (9) headroom at the range's bottom

    def test_allocation_property_tracks_active_range(self):
        m = manager()
        self.run_bootstrap(m)
        alloc = m.decide(make_metrics(0.10, workload=250.0))
        assert m.allocation == alloc


class TestSplitting:
    def test_ranges_split_under_steady_load(self):
        m = manager(split_after=3, min_range_width=50.0)
        for i in range(4):
            m.decide(make_metrics(0.10, workload=250.0 + i))
        for _ in range(30):
            m.decide(make_metrics(0.15, workload=250.0))
        labels = m.range_labels()
        assert len(labels) >= 2
        assert len(m.tree.splits) >= 1

    def test_split_bootstraps_child_allocation(self):
        m = manager(split_after=2, min_range_width=100.0)
        for i in range(4):
            m.decide(make_metrics(0.10, workload=250.0 + i))
        for _ in range(10):
            m.decide(make_metrics(0.12, workload=250.0))
        # After the split, both leaves exist and cover the original span.
        leaves = sorted(m.tree.leaves, key=lambda r: r.low)
        assert leaves[0].low == pytest.approx(200.0)
        assert leaves[-1].high == pytest.approx(400.0)


class TestSwitching:
    def test_burst_switches_range_without_control_step(self):
        m = manager(split_after=2, min_range_width=100.0)
        for i in range(4):
            m.decide(make_metrics(0.10, workload=250.0 + i))
        # Converge and split into 200~300 / 300~400.
        for _ in range(10):
            m.decide(make_metrics(0.12, workload=250.0))
        # Burst into the upper range: first interval only switches.
        m.decide(make_metrics(0.12, workload=380.0))
        assert m.history[-1].phase in ("switch", "control")
        if m.history[-1].phase == "switch":
            assert m.history[-1].action == "switch"

    def test_validation(self):
        with pytest.raises(ValueError):
            manager(workload_low=400.0, workload_high=200.0)
        with pytest.raises(ValueError):
            manager(slope_samples=-1)
