#!/usr/bin/env python
"""Workload-aware PEMA on TrainTicket under a diurnal workload.

Demonstrates §3.4 of the paper: dynamic workload ranges that split as
PEMA learns (parent keeps the upper child, the lower child bootstraps from
the parent's allocation), plus the dynamic response target R(λ) learned by
regressing response on workload at startup.

Run:  python examples/workload_aware_scaling.py
"""

from repro import AnalyticalEngine, ControlLoop, WorkloadAwarePEMA, build_app
from repro.metrics import MetricsCollector
from repro.workload import NoisyTrace, SinusoidalWorkload

HOURS = 8
STEPS = HOURS * 30  # 2-minute control intervals


def main() -> None:
    app = build_app("trainticket")
    print(f"app: {app.name} ({app.n_services} services, "
          f"SLO {app.slo * 1000:.0f} ms)\n")

    manager = WorkloadAwarePEMA(
        app.service_names,
        app.slo,
        app.generous_allocation(300.0),
        workload_low=150.0,
        workload_high=350.0,
        min_range_width=25.0,
        split_after=10,
        slope_samples=6,
        seed=0,
    )
    trace = NoisyTrace(
        SinusoidalWorkload(low=170.0, high=330.0, period=4 * 3600.0),
        sigma=0.05,
        seed=1,
    )
    engine = AnalyticalEngine(app, seed=2)
    collector = MetricsCollector()
    loop = ControlLoop(engine, manager, trace, slo=app.slo, collector=collector)
    result = loop.run(STEPS)

    print(f"learned latency slope m = {manager.slope * 1000:.3f} ms/rps\n")
    print("hour  workload  total_cpu  p95/SLO  active_range")
    control_steps = [s for s in manager.history if s.phase == "control"]
    for hour in range(HOURS):
        idx = hour * 30
        rec = result.records[idx]
        step = manager.history[min(idx, len(manager.history) - 1)]
        print(f"{hour:4d}  {rec.workload:8.0f}  {rec.total_cpu:9.1f}  "
              f"{rec.response / app.slo:7.2f}  {step.range_label}")

    print(f"\nrange splits ({len(manager.tree.splits)}):")
    for s in manager.tree.splits:
        print(f"  step {s.step:4d}: {s.parent[0]:g}~{s.parent[1]:g} -> "
              f"{s.lower[0]:g}~{s.lower[1]:g} (new PEMA #{s.lower_pema_id}) + "
              f"{s.upper[0]:g}~{s.upper[1]:g} (PEMA #{s.upper_pema_id})")
    print(f"\nfinal leaf ranges: {', '.join(manager.range_labels())}")
    print(f"SLO violations: {result.violation_count()}/{len(result)} intervals")
    print(f"metrics recorded: {len(collector.store.metrics())} streams, e.g. "
          f"{collector.store.metrics()[:4]}")


if __name__ == "__main__":
    main()
