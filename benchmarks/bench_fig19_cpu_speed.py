"""Fig. 19 — adaptability to CPU clock-speed changes (SockShop).

Paper: the cluster's clock switches 1.8 → 1.6 → 2.0 GHz mid-run (a stand-in
for hardware/software changes that alter resource demand); PEMA re-converges
each time — more CPU at 1.6 GHz, less at 2.0 GHz — while keeping the SLO.

The scenario is ``benchmarks/grids/fig19_cpu_speed.json``: one spec with
``set_cpu_speed`` hooks at the two switch points (speeds relative to the
1.8 GHz nominal clock).
"""

from __future__ import annotations

import numpy as np

from benchmarks._grids import run_figure_grid
from benchmarks._report import emit
from repro.bench import format_table

ITERS = 60
SWITCH_1 = 25  # -> 1.6 GHz
SWITCH_2 = 42  # -> 2.0 GHz


def run_fig19():
    run = run_figure_grid("fig19_cpu_speed")
    return run.artifacts[0].results[0]


def test_fig19_cpu_speed(benchmark):
    result = benchmark.pedantic(run_fig19, rounds=1, iterations=1)
    rows = [
        [
            it,
            1.8 if it < SWITCH_1 else (1.6 if it < SWITCH_2 else 2.0),
            round(float(result.total_cpu[it]), 2),
            round(float(result.responses[it] * 1000), 0),
        ]
        for it in range(0, ITERS, 3)
    ]
    emit(
        "fig19_cpu_speed",
        format_table(
            ["iter", "clock_ghz", "total_cpu", "response_ms"],
            rows,
            title="Fig. 19 — clock changes 1.8→1.6→2.0 GHz @ iters "
            f"{SWITCH_1}/{SWITCH_2} (paper: PEMA re-converges each time)",
        ),
    )
    at_18 = result.total_cpu[SWITCH_1 - 5 : SWITCH_1].mean()
    at_16 = result.total_cpu[SWITCH_2 - 5 : SWITCH_2].mean()
    at_20 = result.total_cpu[-4:].mean()
    assert at_16 > at_18  # slower clock needs more CPU
    assert at_20 < at_16  # faster clock releases it again
    # QoS recovered after each switch.
    tail = result.records[-6:]
    assert sum(r.violated for r in tail) <= 2
