"""Extension — cost minimization objective (paper §3's C(x_i) remark).

Prices are heterogeneous across node pools in practice; we price
SockShop's Java/NodeJS services (running on licensed / on-demand pools) at
4x the Go services and compare cost-blind PEMA against cost-aware PEMA
(Eqn. 5 probabilities tilted toward expensive services).  Both satisfy the
same SLO; the cost-aware variant should end with a lower bill for a
similar CPU total.
"""

from __future__ import annotations

import numpy as np

from benchmarks._report import emit
from repro.apps import build_app
from repro.bench import format_table
from repro.core import ControlLoop, CostModel, PEMAConfig, PEMAController
from repro.sim import AnalyticalEngine
from repro.workload import ConstantWorkload

WORKLOAD = 700.0
ITERS = 60
RUNS = 4
EXPENSIVE_LANGS = ("java", "nodejs", "mysql")


def _price_model(app) -> CostModel:
    return CostModel(
        {
            svc.name: (4.0 if svc.language in EXPENSIVE_LANGS else 1.0)
            for svc in app.services
        }
    )


def run_ext_cost():
    app = build_app("sockshop")
    model = _price_model(app)
    out = {}
    for label, cm in (("cost-blind", None), ("cost-aware", model)):
        bills, cpus, viols = [], [], []
        for r in range(RUNS):
            engine = AnalyticalEngine(app, seed=300 + r)
            controller = PEMAController(
                app.service_names,
                app.slo,
                app.generous_allocation(WORKLOAD),
                PEMAConfig(),
                seed=301 + r,
                cost_model=cm,
            )
            result = ControlLoop(
                engine, controller, ConstantWorkload(WORKLOAD)
            ).run(ITERS)
            ok = [rec.allocation for rec in result.records if not rec.violated]
            best = min(ok, key=model.cost)
            bills.append(model.cost(best))
            cpus.append(best.total())
            viols.append(result.violation_rate() * 100)
        out[label] = (
            float(np.mean(bills)),
            float(np.mean(cpus)),
            float(np.mean(viols)),
        )
    return out


def test_ext_cost_objective(benchmark):
    out = benchmark.pedantic(run_ext_cost, rounds=1, iterations=1)
    rows = [
        [label, round(bill, 2), round(cpu, 2), round(viol, 1)]
        for label, (bill, cpu, viol) in out.items()
    ]
    emit(
        "ext_cost_objective",
        format_table(
            ["variant", "best_cost", "cpu_at_best_cost", "violations_%"],
            rows,
            title="Extension (§3) — cost objective on SockShop @ "
            f"{WORKLOAD:.0f} rps (Java/NodeJS/MySQL priced 4x Go), "
            f"{RUNS} seeds x {ITERS} intervals",
        ),
    )
    blind_bill = out["cost-blind"][0]
    aware_bill = out["cost-aware"][0]
    # Cost-aware navigation finds cheaper SLO-satisfying configurations.
    assert aware_bill <= blind_bill * 1.02
    # Both remain QoS-sound.
    for label, (_, _, viol) in out.items():
        assert viol < 25.0, label
