"""Request execution state: compiled plans walked by the simulator.

An in-flight request executes its class's stages sequentially.  Each stage
fans out entries in parallel; an entry performs an integer number of
sequential visits to one service (fractional plan visits are sampled
per-request).  A visit is a CPU burst followed by a non-CPU wait (I/O,
downstream blocking), so CPU concurrency stays bursty even when many
requests are in flight — the regime the paper's throttling observations
live in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.apps.spec import AppSpec, RequestClass

__all__ = ["CompiledPlan", "compile_plans", "RequestState", "EntryState"]


@dataclass(frozen=True)
class CompiledPlan:
    """A request class reduced to arrays for fast sampling.

    Each stage entry is pre-split into ``(service, whole, frac)`` — the
    integer floor of the plan's visit count and its fractional part — so
    the per-request sampling loop does no float decomposition.  The split
    happens once at compile time with the exact arithmetic the sampler
    used to do per call (``int(v)``; ``v - int(v)``), so sampled counts
    are unchanged.
    """

    name: str
    weight: float
    stages: tuple[tuple[tuple[str, int, float], ...], ...]
    last_stage: int
    """``len(stages) - 1``, cached for the hot finished-stages test."""


def compile_plans(app: AppSpec) -> tuple[CompiledPlan, ...]:
    plans = []
    for rc in app.request_classes:
        stages = tuple(
            tuple(
                # visits >= 0, so truncation is floor.
                (service, int(visits), visits - int(visits))
                for service, visits in stage.parallel
            )
            for stage in rc.stages
        )
        plans.append(
            CompiledPlan(
                name=rc.name,
                weight=rc.weight,
                stages=stages,
                last_stage=len(stages) - 1,
            )
        )
    return tuple(plans)


@dataclass(slots=True)
class EntryState:
    """One parallel entry of the active stage."""

    service: str
    visits_left: int


@dataclass(slots=True)
class RequestState:
    """One in-flight request."""

    request_id: int
    plan: CompiledPlan
    arrived_at: float
    stage_index: int = -1
    entries_pending: int = 0
    spans: list = field(default_factory=list)

    def sample_stage_entries(
        self, next_uniform: Callable[[], float]
    ) -> list[EntryState]:
        """Materialize the next stage's entries with sampled visit counts.

        ``next_uniform`` serves the simulator's *entry* variate stream
        (see :mod:`repro.sim.des.variates`); one uniform is consumed per
        plan entry, in stage order, whether or not the visit count is
        fractional — a fixed consumption rate both execution modes share.
        """
        stage = self.stage_index + 1
        self.stage_index = stage
        entries: list[EntryState] = []
        for service, whole, frac in self.plan.stages[stage]:
            count = whole + (1 if next_uniform() < frac else 0)
            if count > 0:
                entries.append(EntryState(service, count))
        self.entries_pending = len(entries)
        return entries

    @property
    def finished_stages(self) -> bool:
        return self.stage_index >= self.plan.last_stage
