"""CI performance gate: batched sweep execution vs the scalar path.

Runs one grid through ``run_sweep_cached`` in both modes and enforces the
regression gates the CI benchmark job depends on:

* **equivalence** — cold scalar and cold batched runs must produce
  byte-identical aggregate summaries and byte-identical cache entries;
* **cache** — a warm re-run in each mode must hit the cache for every
  unit (100% hit rate, zero recomputation);
* **throughput** — batched cold cells/sec must be at least
  ``--min-speedup`` times scalar cold cells/sec (best-of ``--repeats``
  storeless runs per mode, so a single scheduler hiccup cannot fail CI).

Writes a ``BENCH_sweep.json`` artifact with the measured numbers either
way, and exits non-zero when a gate fails.

Usage::

    PYTHONPATH=src python benchmarks/sweep_gate.py \
        --grid benchmarks/grids/ci_smoke.json --out BENCH_sweep.json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.experiments import (
    clear_optimum_cache,
    optimum_cache_info,
    reset_optimum_cache_info,
)
from repro.sweeps import (
    SweepGrid,
    SweepStore,
    grid_summary_json,
    run_grid,
    run_sweep_cached,
)


def _store_bytes(store: SweepStore) -> list[bytes]:
    return sorted(path.read_bytes() for path in store.entry_paths())


def _timed_cells_per_sec(specs, *, batch: bool, repeats: int) -> dict:
    """Best-of-``repeats`` cold throughput of one mode (no store I/O)."""
    best = None
    for _ in range(repeats):
        _, report = run_sweep_cached(specs, batch=batch)
        if best is None or report.seconds < best.seconds:
            best = report
    return {
        "seconds": best.seconds,
        "cells_per_sec": best.units_per_sec,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--grid", default="benchmarks/grids/ci_smoke.json")
    parser.add_argument("--out", default="BENCH_sweep.json")
    parser.add_argument("--cache-root", default=None,
                        help="directory for the two mode caches "
                        "(default: a fresh temporary directory)")
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument("--repeats", type=int, default=3,
                        help="cold timing runs per mode (best one counts)")
    args = parser.parse_args(argv)

    grid = SweepGrid.read(args.grid)
    cells = grid.cells()
    units = sum(cell.spec.repeats for cell in cells)
    tmp_cache = None
    if args.cache_root:
        cache_root = Path(args.cache_root)
    else:  # don't litter the working tree with cache entries
        tmp_cache = tempfile.TemporaryDirectory(prefix="sweep-gate-cache-")
        cache_root = Path(tmp_cache.name)

    failures: list[str] = []
    modes: dict[str, dict] = {}
    summaries: dict[str, str] = {}
    stores: dict[str, SweepStore] = {}
    for mode, batch in (("scalar", False), ("batched", True)):
        store = stores[mode] = SweepStore(cache_root / mode)
        store.clear()
        # Each mode starts from a cold in-process OPTM cache too, so
        # grids with optimum cells do comparable baseline work.
        clear_optimum_cache()
        cold = run_grid(grid, store=store, batch=batch, cells=cells)
        warm = run_grid(grid, store=store, batch=batch, cells=cells)
        summaries[mode] = grid_summary_json(cold)
        if cold.report.cache_hits != 0:
            failures.append(f"{mode}: cold run started with a warm cache")
        if grid_summary_json(warm) != summaries[mode]:
            failures.append(f"{mode}: warm aggregate differs from cold")
        warm_hits = warm.report.cache_hits
        if warm_hits != units or warm.report.computed != 0:
            failures.append(
                f"{mode}: warm hit rate {warm_hits}/{units} < 100%"
            )
        modes[mode] = {
            "cold": {
                "seconds": cold.report.seconds,
                "cells_per_sec": cold.report.units_per_sec,
            },
            "warm": {
                "seconds": warm.report.seconds,
                "cells_per_sec": warm.report.units_per_sec,
                "cache_hits": warm_hits,
            },
            "batched_units": cold.report.batched_units,
            "scalar_units": cold.report.scalar_units,
            "optimum": dict(cold.report.optimum),
        }

    # Grids with OPTM columns must trigger identical baseline work in
    # both modes (the store-bytes check below then proves the entries
    # themselves match).
    if (
        modes["scalar"]["optimum"]["solved"]
        != modes["batched"]["optimum"]["solved"]
    ):
        failures.append(
            "batched OPTM solve count differs from scalar "
            f"({modes['batched']['optimum']['solved']} vs "
            f"{modes['scalar']['optimum']['solved']})"
        )

    if summaries["scalar"] != summaries["batched"]:
        failures.append("batched aggregate differs from scalar aggregate")
    if _store_bytes(stores["scalar"]) != _store_bytes(stores["batched"]):
        failures.append("batched cache entries differ from scalar entries")

    # Throughput gate on dedicated storeless timing runs: the equivalence
    # runs above already warmed imports, so both modes start equal.
    specs = [cell.spec for cell in cells]
    for mode, batch in (("scalar", False), ("batched", True)):
        # Counters-only reset: both modes time against the same warm
        # OPTM solution cache, but the reported activity is per-mode.
        reset_optimum_cache_info()
        modes[mode]["timed"] = _timed_cells_per_sec(
            specs, batch=batch, repeats=max(args.repeats, 1)
        )
        modes[mode]["timed"]["optimum_cache"] = optimum_cache_info()
    scalar_rate = modes["scalar"]["timed"]["cells_per_sec"]
    batched_rate = modes["batched"]["timed"]["cells_per_sec"]
    speedup = batched_rate / scalar_rate if scalar_rate > 0 else float("inf")
    if speedup < args.min_speedup:
        failures.append(
            f"batched speedup {speedup:.2f}x < required "
            f"{args.min_speedup:.2f}x ({batched_rate:.1f} vs "
            f"{scalar_rate:.1f} cells/sec)"
        )

    bench = {
        "grid": grid.name,
        "units": units,
        "scalar": modes["scalar"],
        "batched": modes["batched"],
        "speedup_cold": speedup,
        "min_speedup": args.min_speedup,
        "timing_repeats": max(args.repeats, 1),
        "passed": not failures,
        "failures": failures,
    }
    Path(args.out).write_text(json.dumps(bench, indent=2, sort_keys=True) + "\n")
    print(json.dumps(bench, indent=2, sort_keys=True))
    if tmp_cache is not None:
        tmp_cache.cleanup()
    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1
    print(f"sweep gate passed: batched {speedup:.2f}x scalar "
          f"({batched_rate:.1f} vs {scalar_rate:.1f} cells/sec cold)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
