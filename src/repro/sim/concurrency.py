"""Stochastic CPU-concurrency model for microservices.

The analytical engine models each microservice's *instantaneous CPU
concurrency* (cores' worth of runnable threads) as a Gamma random variable

    N_i ~ Gamma(mean = rho_i, var = c_i * rho_i)

where ``rho_i = workload * visits_i * cpu_demand_i`` is the mean CPU demand
in cores and ``c_i >= 1`` is the service's *burstiness index* (variance
inflation relative to a Poisson-like process).  Bursty services (NodeJS
front-ends, fan-out aggregators) have large ``c_i``; smooth Go backends have
small ``c_i``.

This single distribution yields every signal PEMA observes:

* mean utilization ``rho_i / x_i`` — low (15-25%) at the bottleneck for
  bursty services, reproducing Fig. 8(a) of the paper;
* CFS throttling onset: periods where ``N_i > x_i`` are throttled, so the
  throttled fraction is the Gamma survival function at the allocation —
  the sharp knee of Fig. 8(b);
* queueing pressure: the tail expectation ``E[(N_i - x_i)+] / x_i`` drives
  latency inflation (Section 4 of DESIGN.md).

All functions are vectorized over services.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import special as _sc

__all__ = [
    "gamma_sf",
    "gamma_cdf",
    "gamma_quantile",
    "tail_expectation",
    "ConcurrencyModel",
]

_EPS = 1e-12


def _as_arrays(*values: object) -> tuple[np.ndarray, ...]:
    return tuple(np.asarray(v, dtype=np.float64) for v in values)


def gamma_cdf(x: np.ndarray, shape: np.ndarray, scale: np.ndarray) -> np.ndarray:
    """P(N <= x) for N ~ Gamma(shape, scale), vectorized, safe at shape=0."""
    x, shape, scale = _as_arrays(x, shape, scale)
    out = np.ones(np.broadcast_shapes(x.shape, shape.shape, scale.shape))
    valid = (shape > _EPS) & (scale > _EPS)
    xs = np.broadcast_to(x, out.shape)
    ss = np.broadcast_to(shape, out.shape)
    cs = np.broadcast_to(scale, out.shape)
    out[valid] = _sc.gammainc(ss[valid], np.maximum(xs[valid], 0.0) / cs[valid])
    # A zero-demand service never exceeds any allocation.
    out[~valid] = 1.0
    return out


def gamma_sf(x: np.ndarray, shape: np.ndarray, scale: np.ndarray) -> np.ndarray:
    """P(N > x), the throttled-period fraction at allocation ``x``."""
    x, shape, scale = _as_arrays(x, shape, scale)
    out = np.zeros(np.broadcast_shapes(x.shape, shape.shape, scale.shape))
    valid = (shape > _EPS) & (scale > _EPS)
    xs = np.broadcast_to(x, out.shape)
    ss = np.broadcast_to(shape, out.shape)
    cs = np.broadcast_to(scale, out.shape)
    out[valid] = _sc.gammaincc(ss[valid], np.maximum(xs[valid], 0.0) / cs[valid])
    return out


def gamma_quantile(
    p: float | np.ndarray, shape: np.ndarray, scale: np.ndarray
) -> np.ndarray:
    """Inverse CDF; returns 0 where the distribution is degenerate.

    ``p`` may be a scalar or an array of per-element quantile levels.
    """
    shape, scale = _as_arrays(shape, scale)
    p = np.asarray(p, dtype=np.float64)
    if np.any(p <= 0.0) or np.any(p >= 1.0):
        raise ValueError(f"quantile levels must be in (0, 1): {p}")
    out = np.zeros(np.broadcast_shapes(p.shape, shape.shape, scale.shape))
    valid = (shape > _EPS) & (scale > _EPS)
    valid = np.broadcast_to(valid, out.shape)
    ps = np.broadcast_to(p, out.shape)
    ss = np.broadcast_to(shape, out.shape)
    cs = np.broadcast_to(scale, out.shape)
    out[valid] = _sc.gammaincinv(ss[valid], ps[valid]) * cs[valid]
    return out


def tail_expectation(
    x: np.ndarray,
    mean: np.ndarray,
    shape: np.ndarray,
    scale: np.ndarray,
    sf: np.ndarray | None = None,
) -> np.ndarray:
    """E[(N - x)+] — expected excess concurrency above the allocation.

    Uses the Gamma identity ``E[N * 1{N > x}] = mean * SF(x; shape+1, scale)``
    so the whole computation stays in regularized incomplete gammas.

    ``sf`` optionally reuses an already-computed ``gamma_sf(x, shape,
    scale)`` — the second incomplete gamma below is exactly that value, so
    callers that need both (every latency evaluation does) skip one ufunc
    pass with bit-identical results.
    """
    x, mean, shape, scale = _as_arrays(x, mean, shape, scale)
    out = np.zeros(np.broadcast_shapes(x.shape, mean.shape, shape.shape, scale.shape))
    valid = (shape > _EPS) & (scale > _EPS) & (mean > _EPS)
    xs = np.broadcast_to(x, out.shape)
    ms = np.broadcast_to(mean, out.shape)
    ss = np.broadcast_to(shape, out.shape)
    cs = np.broadcast_to(scale, out.shape)
    xv = np.maximum(xs[valid], 0.0)
    upper = ms[valid] * _sc.gammaincc(ss[valid] + 1.0, xv / cs[valid])
    lower = (
        _sc.gammaincc(ss[valid], xv / cs[valid])
        if sf is None
        else np.broadcast_to(np.asarray(sf, dtype=np.float64), out.shape)[valid]
    )
    out[valid] = np.maximum(upper - xv * lower, 0.0)
    return out


@dataclass(frozen=True)
class ConcurrencyModel:
    """Gamma concurrency model for a set of services at one workload level.

    Parameters are arrays aligned on the app's service order:

    * ``mean`` — mean CPU concurrency ``rho_i`` (cores);
    * ``burstiness`` — variance inflation ``c_i`` (var = c_i * rho_i).
    """

    mean: np.ndarray
    burstiness: np.ndarray

    def __post_init__(self) -> None:
        mean = np.asarray(self.mean, dtype=np.float64)
        burst = np.asarray(self.burstiness, dtype=np.float64)
        if mean.shape != burst.shape:
            raise ValueError("mean and burstiness must align")
        if np.any(mean < 0):
            raise ValueError("mean concurrency must be non-negative")
        if np.any(burst <= 0.0):
            raise ValueError("burstiness index must be > 0")
        object.__setattr__(self, "mean", mean)
        object.__setattr__(self, "burstiness", burst)

    @property
    def shape(self) -> np.ndarray:
        """Gamma shape k = mean / c (0 where demand is 0)."""
        return np.where(self.mean > _EPS, self.mean / self.burstiness, 0.0)

    @property
    def scale(self) -> np.ndarray:
        """Gamma scale theta = c."""
        return self.burstiness.copy()

    def exceed_probability(self, alloc: np.ndarray) -> np.ndarray:
        """Fraction of CFS periods where demand exceeds the allocation."""
        return gamma_sf(alloc, self.shape, self.scale)

    def overload(self, alloc: np.ndarray) -> np.ndarray:
        """Dimensionless queueing pressure E[(N - x)+] / x."""
        alloc = np.asarray(alloc, dtype=np.float64)
        excess = tail_expectation(alloc, self.mean, self.shape, self.scale)
        return excess / np.maximum(alloc, _EPS)

    def bottleneck(self, p_crit: float = 0.97) -> np.ndarray:
        """Allocation below which > ``1 - p_crit`` of periods throttle.

        This is the paper's per-service "bottleneck resource": the knee of
        the throttling curve in Fig. 8(b).
        """
        if not 0 < p_crit < 1:
            raise ValueError(f"p_crit must be in (0, 1): {p_crit}")
        return gamma_quantile(p_crit, self.shape, self.scale)

    def activity(self, eps: float = 0.02) -> np.ndarray:
        """P(N > eps): the fraction of time the service is actively using CPU.

        Used to condition the latency-relevant throttle probability: a
        request visiting a mostly-idle service still experiences that
        service's *active-time* throttle behaviour — its own arrival is
        what creates the concurrency.
        """
        return gamma_sf(np.full_like(self.mean, eps), self.shape, self.scale)

    def usage_p90(self, alloc: np.ndarray) -> np.ndarray:
        """90th percentile of fine-grained usage samples, capped at the limit.

        This is what a Kubernetes-VPA-style recommender observes.
        """
        alloc = np.asarray(alloc, dtype=np.float64)
        return np.minimum(alloc, gamma_quantile(0.90, self.shape, self.scale))
