"""Core value types shared across the simulator, controller, and baselines.

The central abstraction is the :class:`Allocation` — a mapping from
microservice name to CPU allocation (in cores, fractional allowed, matching
Kubernetes CPU requests/limits semantics).  Controllers manipulate
allocations; environments evaluate them into :class:`IntervalMetrics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

import numpy as np

__all__ = [
    "Allocation",
    "ServiceMetrics",
    "IntervalMetrics",
]


class Allocation(Mapping[str, float]):
    """Immutable per-microservice CPU allocation vector.

    Behaves like a read-only mapping ``{service_name: cpu_cores}`` and adds
    the vector-style helpers the controller and baselines need.  CPU values
    are in cores (e.g. ``0.5`` = half a core, as in Kubernetes ``500m``).

    Instances are hashable and comparable, which lets the resource-history
    database (RHDb) deduplicate configurations.
    """

    __slots__ = ("_names", "_values")

    def __init__(self, values: Mapping[str, float] | Iterable[tuple[str, float]]):
        items = dict(values)
        if not items:
            raise ValueError("Allocation cannot be empty")
        for name, cpu in items.items():
            if not np.isfinite(cpu) or cpu < 0:
                raise ValueError(f"invalid CPU value for {name!r}: {cpu}")
        self._names: tuple[str, ...] = tuple(items.keys())
        self._values: np.ndarray = np.asarray(
            [float(items[n]) for n in self._names], dtype=np.float64
        )
        self._values.flags.writeable = False

    # -- Mapping protocol ---------------------------------------------------
    def __getitem__(self, name: str) -> float:
        try:
            idx = self._names.index(name)
        except ValueError:
            raise KeyError(name) from None
        return float(self._values[idx])

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __len__(self) -> int:
        return len(self._names)

    # -- identity -----------------------------------------------------------
    def __hash__(self) -> int:
        return hash((self._names, self._values.tobytes()))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Allocation):
            return NotImplemented
        return self._names == other._names and np.array_equal(
            self._values, other._values
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{n}={v:.3g}" for n, v in zip(self._names, self._values))
        return f"Allocation({body})"

    # -- vector helpers -----------------------------------------------------
    @property
    def names(self) -> tuple[str, ...]:
        """Service names in a stable order."""
        return self._names

    def as_array(self, order: Iterable[str] | None = None) -> np.ndarray:
        """Return CPU values as a float array, optionally reordered."""
        if order is None:
            return self._values.copy()
        return np.asarray([self[name] for name in order], dtype=np.float64)

    @classmethod
    def from_array(cls, names: Iterable[str], values: np.ndarray) -> "Allocation":
        names = tuple(names)
        values = np.asarray(values, dtype=np.float64)
        if len(names) != values.shape[0]:
            raise ValueError("names/values length mismatch")
        return cls(dict(zip(names, values.tolist())))

    def total(self) -> float:
        """Aggregate CPU across all services (the paper's objective, Eqn 1)."""
        return float(self._values.sum())

    def with_value(self, name: str, cpu: float) -> "Allocation":
        """Return a copy with a single service's CPU replaced."""
        if name not in self._names:
            raise KeyError(name)
        items = dict(zip(self._names, self._values.tolist()))
        items[name] = float(cpu)
        return Allocation(items)

    def reduce(
        self, names: Iterable[str], fraction: float, floor: float = 0.05
    ) -> "Allocation":
        """Multiply the listed services' CPU by ``(1 - fraction)``.

        ``fraction`` is the paper's per-step reduction ``Δt`` expressed as a
        fraction (0.1 = reduce by 10%).  ``floor`` prevents allocations from
        collapsing to zero, mirroring Kubernetes' minimum CPU requests.
        """
        if not 0.0 <= fraction < 1.0:
            raise ValueError(f"fraction must be in [0, 1): {fraction}")
        target = set(names)
        unknown = target - set(self._names)
        if unknown:
            raise KeyError(f"unknown services: {sorted(unknown)}")
        items = {
            n: max(floor, v * (1.0 - fraction)) if n in target else v
            for n, v in zip(self._names, self._values.tolist())
        }
        return Allocation(items)

    def scale(self, factor: float) -> "Allocation":
        """Uniformly scale every service's CPU."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return Allocation(
            {n: v * factor for n, v in zip(self._names, self._values.tolist())}
        )

    def clamp(self, lower: float = 0.05, upper: float = float("inf")) -> "Allocation":
        """Clamp every service's CPU into ``[lower, upper]``."""
        return Allocation(
            {
                n: min(max(v, lower), upper)
                for n, v in zip(self._names, self._values.tolist())
            }
        )

    def monotone_le(self, other: "Allocation") -> bool:
        """True iff every service has CPU ≤ the other allocation's.

        This is the paper's *monotonic reduction* partial order: ``a`` is a
        monotonic reduction of ``b`` iff ``a.monotone_le(b)``.
        """
        if self._names != other._names:
            raise ValueError("allocations cover different services")
        return bool(np.all(self._values <= other._values + 1e-12))


@dataclass(frozen=True)
class ServiceMetrics:
    """Per-microservice metrics for one monitoring interval.

    Mirrors what the paper scrapes from Prometheus/cAdvisor:

    * ``utilization`` — mean CPU usage divided by allocation, in [0, 1+]
      (``cpu_usage_seconds_total`` rate over the limit);
    * ``throttle_seconds`` — CFS throttled time accumulated in the interval
      (``cpu_cfs_throttled_seconds_total`` delta);
    * ``usage_cores`` — mean CPU cores actually consumed;
    * ``usage_p90_cores`` — 90th percentile of fine-grained usage samples
      (what the rule-based baseline keys on).
    """

    utilization: float
    throttle_seconds: float
    usage_cores: float
    usage_p90_cores: float = 0.0


@dataclass(frozen=True)
class IntervalMetrics:
    """One control interval's observation of the whole application."""

    latency_p95: float
    """End-to-end 95th percentile response latency (seconds)."""

    workload_rps: float
    """Offered load during the interval (requests per second)."""

    services: Mapping[str, ServiceMetrics] = field(default_factory=dict)
    """Per-microservice metrics keyed by service name."""

    latency_mean: float = 0.0
    """Mean end-to-end latency (seconds); 0 if not measured."""

    completed_requests: int = 0
    """Requests completed in the interval (DES only; 0 for analytical)."""

    def utilization(self, name: str) -> float:
        return self.services[name].utilization

    def throttle(self, name: str) -> float:
        return self.services[name].throttle_seconds

    def violates(self, slo: float) -> bool:
        """True iff the interval's p95 latency exceeds the SLO."""
        return self.latency_p95 > slo
