"""Event heaps for the discrete-event simulator.

Two implementations of one interface (``push``/``pop``/``peek_time``/
``now``/``len``): :class:`EventQueue` stores :class:`Event` dataclass
instances (the scalar reference — every comparison runs ``Event.__lt__``
in Python), while :class:`FastEventQueue` stores plain
``(time, seq, kind, payload, epoch)`` tuples so ``heapq`` compares them
in C.  The strictly increasing ``seq`` breaks every time tie before the
comparison could reach the (unorderable) kind field, and reproduces
``EventQueue``'s exact (time, seq) order — the property the DES
fidelity gate checks end to end.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

__all__ = ["EventKind", "Event", "EventQueue", "FastEventQueue"]


class EventKind(Enum):
    ARRIVAL = "arrival"
    CPU_DONE = "cpu_done"
    WAIT_DONE = "wait_done"
    QUOTA_EXHAUST = "quota_exhaust"
    PERIOD_END = "period_end"
    STAGE_START = "stage_start"
    BACKGROUND = "background"


@dataclass(order=True)
class Event:
    """A scheduled event; ordering is (time, sequence number)."""

    time: float
    seq: int
    kind: EventKind = field(compare=False)
    payload: Any = field(compare=False, default=None)
    epoch: int = field(compare=False, default=-1)
    """Staleness guard: events carrying an epoch are dropped when the
    target's epoch has advanced since scheduling."""


class EventQueue:
    """Min-heap of events with a monotone clock."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self.now = 0.0

    def __len__(self) -> int:
        return len(self._heap)

    def push(
        self, time: float, kind: EventKind, payload: Any = None, epoch: int = -1
    ) -> None:
        if time < self.now - 1e-9:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        heapq.heappush(
            self._heap,
            Event(time=max(time, self.now), seq=next(self._seq), kind=kind,
                  payload=payload, epoch=epoch),
        )

    def pop(self) -> Event:
        event = heapq.heappop(self._heap)
        self.now = event.time
        return event

    def peek_time(self) -> float:
        """Timestamp of the next event (raises IndexError when empty)."""
        return self._heap[0].time


class FastEventQueue:
    """Tuple-backed min-heap with :class:`EventQueue`'s interface and order.

    Events are ``(time, seq, kind, payload, epoch)`` tuples; ``pop``
    returns the tuple (callers unpack instead of reading attributes).
    """

    __slots__ = ("_heap", "_next_seq", "now")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, EventKind, Any, int]] = []
        self._next_seq = 0
        self.now = 0.0

    def __len__(self) -> int:
        return len(self._heap)

    def push(
        self, time: float, kind: EventKind, payload: Any = None, epoch: int = -1
    ) -> None:
        now = self.now
        if time < now - 1e-9:
            raise ValueError(f"cannot schedule in the past: {time} < {now}")
        seq = self._next_seq
        self._next_seq = seq + 1
        heapq.heappush(
            self._heap,
            (time if time > now else now, seq, kind, payload, epoch),
        )

    def pop(self) -> tuple[float, int, EventKind, Any, int]:
        event = heapq.heappop(self._heap)
        self.now = event[0]
        return event

    def peek_time(self) -> float:
        """Timestamp of the next event (raises IndexError when empty)."""
        return self._heap[0][0]
